/**
 * @file
 * Tests for variant descriptors and their validation rules.
 */

#include "approx/variant.hh"

#include <gtest/gtest.h>

namespace {

using namespace pliant::approx;

ApproxVariant
makeVariant(int idx, double time, double inacc)
{
    ApproxVariant v;
    v.index = idx;
    v.label = idx == 0 ? "precise" : "v" + std::to_string(idx);
    v.execTimeNorm = time;
    v.inaccuracy = inacc;
    return v;
}

TEST(PressureVectorTest, ScaledMultipliesChannels)
{
    PressureVector p{0.8, 20.0, 10.0, 4.0};
    const PressureVector s = p.scaled(0.5, 0.25, 0.1, 1.0);
    EXPECT_DOUBLE_EQ(s.compute, 0.4);
    EXPECT_DOUBLE_EQ(s.llcMb, 5.0);
    EXPECT_DOUBLE_EQ(s.membwGbs, 1.0);
    EXPECT_DOUBLE_EQ(s.ioMbs, 4.0);
}

TEST(ValidateVariantsTest, EmptyListRejected)
{
    EXPECT_FALSE(validateVariants({}).empty());
}

TEST(ValidateVariantsTest, ValidListAccepted)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(1, 0.8, 0.01),
                                  makeVariant(2, 0.6, 0.03)};
    EXPECT_EQ(validateVariants(vs), "");
}

TEST(ValidateVariantsTest, FirstMustBePrecise)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 0.9, 0.0)};
    EXPECT_FALSE(validateVariants(vs).empty());
    vs = {makeVariant(0, 1.0, 0.02)};
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ValidateVariantsTest, IndicesMustBeContiguous)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(2, 0.8, 0.01)};
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ValidateVariantsTest, InaccuracyMustBeMonotone)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(1, 0.8, 0.04),
                                  makeVariant(2, 0.6, 0.02)};
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ValidateVariantsTest, ScalesMustBeInUnitInterval)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(1, 0.8, 0.02)};
    vs[1].llcScale = 1.5;
    EXPECT_FALSE(validateVariants(vs).empty());
    vs[1].llcScale = 0.5;
    vs[1].membwScale = 0.0;
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ValidateVariantsTest, NegativeTimeRejected)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(1, -0.1, 0.02)};
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ValidateVariantsTest, InaccuracyAboveOneRejected)
{
    std::vector<ApproxVariant> vs{makeVariant(0, 1.0, 0.0),
                                  makeVariant(1, 0.5, 1.2)};
    EXPECT_FALSE(validateVariants(vs).empty());
}

TEST(ApproxVariantTest, IsPreciseOnlyForIndexZero)
{
    EXPECT_TRUE(makeVariant(0, 1.0, 0.0).isPrecise());
    EXPECT_FALSE(makeVariant(1, 0.9, 0.01).isPrecise());
}

} // namespace
