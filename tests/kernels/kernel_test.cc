/**
 * @file
 * Cross-kernel contract tests: every registered kernel must satisfy
 * the ApproxKernel interface invariants the DSE and runtime rely on.
 */

#include "kernels/kernel.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace pliant::kernels;

TEST(KnobsTest, DefaultIsPrecise)
{
    Knobs k;
    EXPECT_TRUE(k.isPrecise());
    EXPECT_EQ(k.describe(), "precise");
}

TEST(KnobsTest, DescribeCombinations)
{
    EXPECT_EQ((Knobs{4, Precision::Double, false}).describe(), "p4");
    EXPECT_EQ((Knobs{1, Precision::Float, false}).describe(), "float");
    EXPECT_EQ((Knobs{1, Precision::Double, true}).describe(), "nosync");
    EXPECT_EQ((Knobs{2, Precision::Float, true}).describe(),
              "p2+float+nosync");
}

TEST(KnobsTest, Equality)
{
    EXPECT_EQ((Knobs{2, Precision::Float, false}),
              (Knobs{2, Precision::Float, false}));
    EXPECT_NE((Knobs{2, Precision::Float, false}),
              (Knobs{2, Precision::Double, false}));
}

TEST(RegistryTest, HasFifteenKernels)
{
    EXPECT_EQ(kernelRegistry().size(), 15u);
}

TEST(RegistryTest, MakeKernelByName)
{
    auto k = makeKernel("kmeans", 1);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name(), "kmeans");
}

TEST(RegistryTest, UnknownNameIsFatal)
{
    EXPECT_THROW(makeKernel("no_such_kernel"), pliant::util::FatalError);
}

TEST(RegistryTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &e : kernelRegistry())
        EXPECT_TRUE(names.insert(e.name).second)
            << "duplicate kernel name " << e.name;
}

/** Per-kernel contract checks, parameterized over the registry. */
class KernelContractTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelContractTest, NameMatchesRegistryEntry)
{
    auto k = makeKernel(GetParam(), 7);
    EXPECT_EQ(k->name(), GetParam());
}

TEST_P(KernelContractTest, PreciseRunHasZeroInaccuracy)
{
    auto k = makeKernel(GetParam(), 7);
    const KernelResult r = k->run(Knobs{});
    EXPECT_EQ(r.inaccuracy, 0.0);
    EXPECT_GT(r.elapsedMs, 0.0);
}

TEST_P(KernelContractTest, PreciseOutputIsDeterministic)
{
    auto k1 = makeKernel(GetParam(), 7);
    auto k2 = makeKernel(GetParam(), 7);
    EXPECT_DOUBLE_EQ(k1->run(Knobs{}).outputMetric,
                     k2->run(Knobs{}).outputMetric);
}

TEST_P(KernelContractTest, KnobSpaceStartsPreciseAndIsNonTrivial)
{
    auto k = makeKernel(GetParam(), 7);
    const auto space = k->knobSpace();
    ASSERT_GE(space.size(), 3u);
    EXPECT_TRUE(space.front().isPrecise());
    int precise_count = 0;
    for (const auto &knobs : space)
        precise_count += knobs.isPrecise() ? 1 : 0;
    EXPECT_EQ(precise_count, 1) << "exactly one precise point expected";
}

TEST_P(KernelContractTest, AllVariantsReportBoundedInaccuracy)
{
    auto k = makeKernel(GetParam(), 7);
    for (const auto &knobs : k->knobSpace()) {
        const KernelResult r = k->run(knobs);
        EXPECT_GE(r.inaccuracy, 0.0) << knobs.describe();
        EXPECT_LE(r.inaccuracy, 1.0) << knobs.describe();
    }
}

TEST_P(KernelContractTest, ApproximateRunIsDeterministicGivenSeed)
{
    const Knobs knobs{4, Precision::Double, false};
    auto k1 = makeKernel(GetParam(), 11);
    auto k2 = makeKernel(GetParam(), 11);
    EXPECT_DOUBLE_EQ(k1->run(knobs).outputMetric,
                     k2->run(knobs).outputMetric);
    EXPECT_DOUBLE_EQ(k1->run(knobs).inaccuracy,
                     k2->run(knobs).inaccuracy);
}

TEST_P(KernelContractTest, HeavyPerforationIsFaster)
{
    auto k = makeKernel(GetParam(), 7);
    // Median-of-3 to shield against scheduler noise.
    auto median_time = [&](const Knobs &knobs) {
        std::vector<double> t;
        for (int i = 0; i < 3; ++i)
            t.push_back(k->run(knobs).elapsedMs);
        std::sort(t.begin(), t.end());
        return t[1];
    };
    const double precise = median_time(Knobs{});
    const double perforated =
        median_time(Knobs{8, Precision::Double, false});
    EXPECT_LT(perforated, precise)
        << "p8 should beat precise for " << GetParam();
}

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    for (const auto &e : kernelRegistry())
        names.push_back(e.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelContractTest,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

} // namespace
