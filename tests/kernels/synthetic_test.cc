/**
 * @file
 * Tests for the synthetic input generators.
 */

#include "kernels/synthetic.hh"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace pliant::kernels;
using pliant::util::Rng;

TEST(MakeBlobsTest, ShapesMatchRequest)
{
    Rng rng(1);
    const BlobData b = makeBlobs(rng, 500, 4, 3);
    EXPECT_EQ(b.points.rows, 500u);
    EXPECT_EQ(b.points.cols, 4u);
    EXPECT_EQ(b.labels.size(), 500u);
    EXPECT_EQ(b.centers.rows, 3u);
}

TEST(MakeBlobsTest, LabelsWithinRange)
{
    Rng rng(1);
    const BlobData b = makeBlobs(rng, 300, 2, 5);
    for (int l : b.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 5);
    }
}

TEST(MakeBlobsTest, PointsClusterAroundTheirCenters)
{
    Rng rng(2);
    const double spread = 0.5;
    const BlobData b = makeBlobs(rng, 1000, 3, 4, spread);
    double total_dev = 0.0;
    for (std::size_t i = 0; i < b.points.rows; ++i) {
        const int c = b.labels[i];
        for (std::size_t d = 0; d < 3; ++d) {
            const double diff = b.points.at(i, d) -
                b.centers.at(static_cast<std::size_t>(c), d);
            total_dev += diff * diff;
        }
    }
    // Mean squared deviation per coordinate should be ~spread^2.
    const double msd = total_dev / (1000.0 * 3.0);
    EXPECT_NEAR(msd, spread * spread, 0.05);
}

TEST(MakeBlobsTest, RejectsDegenerateShapes)
{
    Rng rng(1);
    EXPECT_THROW(makeBlobs(rng, 0, 2, 2), pliant::util::FatalError);
    EXPECT_THROW(makeBlobs(rng, 10, 0, 2), pliant::util::FatalError);
    EXPECT_THROW(makeBlobs(rng, 10, 2, 0), pliant::util::FatalError);
}

TEST(MakeGenotypesTest, ShapesAndRanges)
{
    Rng rng(3);
    const GenotypeData g = makeGenotypes(rng, 200, 100, 5);
    EXPECT_EQ(g.genotypes.size(), 200u * 100u);
    EXPECT_EQ(g.phenotype.size(), 200u);
    EXPECT_EQ(g.causal.size(), 5u);
    for (auto v : g.genotypes)
        EXPECT_LE(v, 2);
    for (auto v : g.phenotype)
        EXPECT_LE(v, 1);
}

TEST(MakeGenotypesTest, CausalSnpsAreDistinctAndValid)
{
    Rng rng(3);
    const GenotypeData g = makeGenotypes(rng, 100, 50, 8);
    std::set<std::size_t> uniq(g.causal.begin(), g.causal.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (std::size_t s : g.causal)
        EXPECT_LT(s, 50u);
}

TEST(MakeGenotypesTest, CausalSnpsCorrelateWithPhenotype)
{
    Rng rng(4);
    const GenotypeData g = makeGenotypes(rng, 2000, 60, 4);
    // Mean genotype among cases should exceed controls at causal SNPs.
    double diff_sum = 0.0;
    for (std::size_t s : g.causal) {
        double case_sum = 0, case_n = 0, ctrl_sum = 0, ctrl_n = 0;
        for (std::size_t i = 0; i < g.individuals; ++i) {
            const double geno = g.genotypes[i * g.snps + s];
            if (g.phenotype[i]) {
                case_sum += geno;
                ++case_n;
            } else {
                ctrl_sum += geno;
                ++ctrl_n;
            }
        }
        diff_sum += case_sum / std::max(case_n, 1.0) -
                    ctrl_sum / std::max(ctrl_n, 1.0);
    }
    EXPECT_GT(diff_sum / static_cast<double>(g.causal.size()), 0.05);
}

TEST(MakeSequenceTest, LengthAndAlphabet)
{
    Rng rng(5);
    const std::string s = makeSequence(rng, 500);
    EXPECT_EQ(s.size(), 500u);
    for (char ch : s)
        EXPECT_NE(std::string("ACGT").find(ch), std::string::npos);
}

TEST(MutateSequenceTest, SimilarLengthAndLimitedDivergence)
{
    Rng rng(6);
    const std::string base = makeSequence(rng, 1000);
    const std::string mut = mutateSequence(rng, base, 0.1);
    // Indels are rare: length within 5%.
    EXPECT_NEAR(static_cast<double>(mut.size()), 1000.0, 50.0);
    EXPECT_NE(base, mut);
    // Before the first indel shifts the frame, positionwise identity
    // should be high (~1 - sub_rate). Check the leading segment.
    std::size_t same = 0;
    const std::size_t prefix = 30;
    for (std::size_t i = 0; i < prefix; ++i)
        same += base[i] == mut[i] ? 1 : 0;
    EXPECT_GT(static_cast<double>(same) / prefix, 0.6);
}

TEST(MakeNetlistTest, AdjacencyIsValid)
{
    Rng rng(7);
    const Netlist net = makeNetlist(rng, 256, 4);
    EXPECT_EQ(net.elements, 256u);
    EXPECT_GE(net.gridSide * net.gridSide, net.elements);
    for (std::size_t e = 0; e < net.elements; ++e) {
        for (auto nbr : net.adjacency[e]) {
            EXPECT_LT(nbr, net.elements);
            EXPECT_NE(nbr, e);
        }
    }
}

TEST(MakeNetlistTest, HasLocalityBias)
{
    Rng rng(8);
    const Netlist net = makeNetlist(rng, 4096, 4);
    std::size_t near = 0, total = 0;
    for (std::size_t e = 0; e < net.elements; ++e) {
        for (auto nbr : net.adjacency[e]) {
            ++total;
            if (std::llabs(static_cast<long long>(nbr) -
                           static_cast<long long>(e)) <= 32)
                ++near;
        }
    }
    // The generator routes ~70% of nets to nearby ids.
    EXPECT_GT(static_cast<double>(near) / static_cast<double>(total),
              0.5);
}

TEST(MakeTermDocTest, CountsAreNonNegativeAndDocSized)
{
    Rng rng(9);
    const TermDocData td = makeTermDoc(rng, 50, 80, 4);
    EXPECT_EQ(td.counts.size(), 50u * 80u);
    for (std::size_t d = 0; d < td.docs; ++d) {
        double len = 0.0;
        for (std::size_t w = 0; w < td.terms; ++w) {
            EXPECT_GE(td.counts[d * td.terms + w], 0.0);
            len += td.counts[d * td.terms + w];
        }
        EXPECT_GE(len, 80.0);  // min doc length
        EXPECT_LE(len, 200.0); // max doc length
    }
}

TEST(GeneratorsTest, DeterministicAcrossCalls)
{
    Rng a(10), b(10);
    const BlobData ba = makeBlobs(a, 100, 3, 2);
    const BlobData bb = makeBlobs(b, 100, 3, 2);
    EXPECT_EQ(ba.points.data, bb.points.data);
    EXPECT_EQ(ba.labels, bb.labels);
}

} // namespace
