/**
 * @file
 * Kernel-specific behavioural tests: the properties that make each
 * kernel a faithful stand-in for its benchmark-suite counterpart.
 */

#include <gtest/gtest.h>

#include "kernels/annealing.hh"
#include "kernels/bio.hh"
#include "kernels/clustering.hh"
#include "kernels/ml.hh"
#include "kernels/physics.hh"

namespace {

using namespace pliant::kernels;

TEST(KmeansTest, PerforationPreservesQualityOnSeparatedBlobs)
{
    KmeansKernel k(42);
    k.run(Knobs{});
    // Well-separated blobs: moderate perforation converges to the
    // same clustering (the effect the paper notes for canneal-style
    // wasted iterations).
    const KernelResult r = k.run(Knobs{2, Precision::Double, false});
    EXPECT_LT(r.inaccuracy, 0.05);
}

TEST(KmeansTest, FloatPrecisionCostsAlmostNothing)
{
    KmeansKernel k(42);
    k.run(Knobs{});
    const KernelResult r = k.run(Knobs{1, Precision::Float, false});
    EXPECT_LT(r.inaccuracy, 0.01);
}

TEST(FuzzyKmeansTest, ObjectiveIsPositive)
{
    FuzzyKmeansKernel k(42);
    EXPECT_GT(k.run(Knobs{}).outputMetric, 0.0);
}

TEST(BirchTest, HeavierPerforationIsWorse)
{
    BirchKernel k(42);
    k.run(Knobs{});
    const double i2 = k.run(Knobs{2, Precision::Double, false}).inaccuracy;
    const double i8 = k.run(Knobs{8, Precision::Double, false}).inaccuracy;
    EXPECT_LE(i2, i8 + 1e-9);
}

TEST(StreamclusterTest, CostGrowsWithPerforation)
{
    StreamclusterKernel k(42);
    k.run(Knobs{});
    const double c1 = k.run(Knobs{}).outputMetric;
    const double c8 = k.run(Knobs{8, Precision::Double, false}).outputMetric;
    EXPECT_GE(c8, c1);
}

TEST(CannealTest, WireLengthImprovesOverRandomPlacement)
{
    // The annealer must actually optimize: a tiny run (high remaining
    // temperature) should end with higher cost than the full run.
    AnnealingConfig small;
    small.temperatureSteps = 2;
    small.movesPerStep = 256;
    CannealKernel quick(42, small);
    CannealKernel full(42);
    const double quick_cost = quick.run(Knobs{}).outputMetric;
    const double full_cost = full.run(Knobs{}).outputMetric;
    EXPECT_LT(full_cost, quick_cost);
}

TEST(CannealTest, BetterApproxPlacementHasNoQualityLoss)
{
    CannealKernel k(42);
    k.run(Knobs{});
    // Perforated annealing can occasionally find an equal-or-better
    // placement; inaccuracy must then be 0, never negative.
    for (int p : {2, 3}) {
        const double inacc =
            k.run(Knobs{p, Precision::Double, false}).inaccuracy;
        EXPECT_GE(inacc, 0.0);
    }
}

TEST(CannealTest, SyncElisionIntroducesQualityNoise)
{
    CannealKernel k(42);
    k.run(Knobs{});
    const KernelResult racy = k.run(Knobs{4, Precision::Double, true});
    // Stale-cost swaps must not corrupt the result beyond the metric
    // range; they may or may not lose quality on a given seed.
    EXPECT_GE(racy.outputMetric, 0.0);
    EXPECT_LE(racy.inaccuracy, 1.0);
}

TEST(WaterNbodyTest, PreciseIntegrationHasSmallDrift)
{
    WaterNbodyKernel k(42);
    const KernelResult r = k.run(Knobs{});
    // outputMetric is relative energy drift; a sane dt keeps it small.
    EXPECT_LT(r.outputMetric, 0.2);
}

TEST(WaterNbodyTest, PerforationIncreasesDrift)
{
    WaterNbodyKernel k(42);
    k.run(Knobs{});
    const double d2 = k.run(Knobs{2, Precision::Double, false}).inaccuracy;
    const double d6 = k.run(Knobs{6, Precision::Double, false}).inaccuracy;
    EXPECT_LE(d2, d6 + 0.05);
    EXPECT_GT(d6, 0.0);
}

TEST(RaytraceTest, PerforatedImageDiffersModestly)
{
    RaytraceKernel k(42);
    k.run(Knobs{});
    const double i2 = k.run(Knobs{2, Precision::Double, false}).inaccuracy;
    const double i4 = k.run(Knobs{4, Precision::Double, false}).inaccuracy;
    EXPECT_GT(i2, 0.0);
    EXPECT_LE(i2, i4 + 1e-9);
    EXPECT_LT(i4, 0.3);
}

TEST(RaytraceTest, ImageMeanIsStable)
{
    RaytraceKernel k(42);
    const double precise = k.run(Knobs{}).outputMetric;
    const double approx =
        k.run(Knobs{3, Precision::Double, false}).outputMetric;
    // Mean intensity barely changes even when pixels are interpolated.
    EXPECT_NEAR(approx / precise, 1.0, 0.15);
}

TEST(SnpTest, TopAssociationsSurviveModeratePerforation)
{
    SnpKernel k(42);
    k.run(Knobs{});
    // Strong causal SNPs keep their top-K slots at 1/2 subsampling.
    const double i2 = k.run(Knobs{2, Precision::Double, false}).inaccuracy;
    EXPECT_LT(i2, 0.3);
}

TEST(SnpTest, ElidingContinuityCorrectionIsCheap)
{
    SnpKernel k(42);
    k.run(Knobs{});
    const double inacc =
        k.run(Knobs{1, Precision::Double, true}).inaccuracy;
    EXPECT_LT(inacc, 0.25);
}

TEST(SmithWatermanTest, BandingOnlyLowersScores)
{
    SmithWatermanKernel k(42);
    const double full = k.run(Knobs{}).outputMetric;
    for (int p : {2, 4, 8}) {
        const double banded =
            k.run(Knobs{p, Precision::Double, false}).outputMetric;
        EXPECT_LE(banded, full + 1e-9) << "band p=" << p;
    }
}

TEST(SmithWatermanTest, NarrowerBandIsFasterAndWorse)
{
    SmithWatermanKernel k(42);
    k.run(Knobs{});
    const KernelResult wide = k.run(Knobs{2, Precision::Double, false});
    const KernelResult narrow =
        k.run(Knobs{12, Precision::Double, false});
    EXPECT_GE(narrow.inaccuracy, wide.inaccuracy - 1e-9);
}

TEST(ViterbiTest, BeamPruningOnlyLowersLogProb)
{
    ViterbiKernel k(42);
    const double full = k.run(Knobs{}).outputMetric;
    const double pruned =
        k.run(Knobs{6, Precision::Double, false}).outputMetric;
    EXPECT_LE(pruned, full + 1e-9);
}

TEST(NaiveBayesTest, PreciseAccuracyIsHigh)
{
    NaiveBayesKernel k(42);
    // Well-separated Gaussians: the classifier should be clearly
    // better than chance (1/6).
    EXPECT_GT(k.run(Knobs{}).outputMetric, 0.5);
}

TEST(NaiveBayesTest, VarianceElisionLosesSomeAccuracy)
{
    NaiveBayesKernel k(42);
    k.run(Knobs{});
    const KernelResult elided =
        k.run(Knobs{1, Precision::Double, true});
    EXPECT_GE(elided.inaccuracy, 0.0);
    EXPECT_LT(elided.inaccuracy, 0.5);
}

TEST(PlsaTest, EmIncreasesLikelihoodOverInit)
{
    PlsaConfig quick;
    quick.iterations = 2;
    PlsaKernel two(42, quick);
    PlsaKernel full(42);
    // More EM iterations -> higher (less negative) log-likelihood.
    EXPECT_GT(full.run(Knobs{}).outputMetric,
              two.run(Knobs{}).outputMetric);
}

TEST(PlsaTest, PerforationShortfallIsGraded)
{
    PlsaKernel k(42);
    k.run(Knobs{});
    const double i2 = k.run(Knobs{2, Precision::Double, false}).inaccuracy;
    const double i8 = k.run(Knobs{8, Precision::Double, false}).inaccuracy;
    EXPECT_LE(i2, i8 + 1e-9);
    EXPECT_LT(i8, 0.5);
}

} // namespace
