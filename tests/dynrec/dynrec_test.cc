/**
 * @file
 * Tests for the dynamic-replacement machinery: variant tables, signal
 * dispatch, the instrumented-kernel wrapper, and the overhead model.
 */

#include <gtest/gtest.h>

#include "dynrec/instrumented.hh"
#include "dynrec/overhead.hh"
#include "dynrec/variant_table.hh"
#include "util/logging.hh"

namespace {

using namespace pliant::dynrec;

TEST(VariantTableTest, DispatchesToActiveVariant)
{
    VariantTable<int(int)> table;
    table.registerVariant([](int x) { return x + 1; }, "inc");
    table.registerVariant([](int x) { return x * 2; }, "dbl");
    EXPECT_EQ(table(10), 11);
    table.switchTo(1);
    EXPECT_EQ(table(10), 20);
    table.switchTo(0);
    EXPECT_EQ(table(10), 11);
}

TEST(VariantTableTest, TracksSwitchAndCallCounts)
{
    VariantTable<int()> table;
    table.registerVariant([]() { return 1; }, "a");
    table.registerVariant([]() { return 2; }, "b");
    table();
    table();
    table.switchTo(1);
    table();
    EXPECT_EQ(table.calls(), 3u);
    EXPECT_EQ(table.switches(), 1u);
}

TEST(VariantTableTest, LabelsAndSize)
{
    VariantTable<void()> table;
    table.registerVariant([]() {}, "precise");
    table.registerVariant([]() {}, "p4");
    EXPECT_EQ(table.size(), 2);
    EXPECT_EQ(table.label(0), "precise");
    EXPECT_EQ(table.label(1), "p4");
}

TEST(VariantTableTest, SwitchOutOfRangeIsFatal)
{
    VariantTable<void()> table;
    table.registerVariant([]() {}, "only");
    EXPECT_THROW(table.switchTo(1), pliant::util::FatalError);
    EXPECT_THROW(table.switchTo(-1), pliant::util::FatalError);
}

TEST(VariantTableTest, StartsAtVariantZero)
{
    VariantTable<int()> table;
    table.registerVariant([]() { return 7; }, "a");
    table.registerVariant([]() { return 8; }, "b");
    EXPECT_EQ(table.active(), 0);
    EXPECT_EQ(table(), 7);
}

TEST(SignalDispatcherTest, RaiseRunsMappedAction)
{
    SignalDispatcher d;
    int hits = 0;
    d.mapSignal(34, [&]() { ++hits; });
    d.raise(34);
    d.raise(34);
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(d.delivered(), 2u);
}

TEST(SignalDispatcherTest, DoubleMappingIsFatal)
{
    SignalDispatcher d;
    d.mapSignal(34, []() {});
    EXPECT_THROW(d.mapSignal(34, []() {}), pliant::util::FatalError);
}

TEST(SignalDispatcherTest, UnmappedRaiseIsFatal)
{
    SignalDispatcher d;
    EXPECT_THROW(d.raise(99), pliant::util::FatalError);
}

TEST(SignalDispatcherTest, IsMappedQueries)
{
    SignalDispatcher d;
    d.mapSignal(40, []() {});
    EXPECT_TRUE(d.isMapped(40));
    EXPECT_FALSE(d.isMapped(41));
    EXPECT_EQ(d.mappedCount(), 1u);
}

TEST(SignalDispatcherTest, SignalsSwitchVariantTables)
{
    // The full Pliant actuation path: signal -> table switch.
    VariantTable<int()> table;
    table.registerVariant([]() { return 0; }, "precise");
    table.registerVariant([]() { return 1; }, "approx");
    SignalDispatcher d;
    d.mapSignal(34, [&]() { table.switchTo(0); });
    d.mapSignal(35, [&]() { table.switchTo(1); });
    d.raise(35);
    EXPECT_EQ(table(), 1);
    d.raise(34);
    EXPECT_EQ(table(), 0);
}

TEST(InstrumentedKernelTest, WrapsWholeKnobSpace)
{
    InstrumentedKernel ik(pliant::kernels::makeKernel("raytrace", 3));
    EXPECT_GE(ik.variantCount(), 3);
    EXPECT_EQ(ik.activeVariant(), 0);
    EXPECT_TRUE(ik.knobsOf(0).isPrecise());
}

TEST(InstrumentedKernelTest, SignalSwitchesActiveVariant)
{
    InstrumentedKernel ik(pliant::kernels::makeKernel("raytrace", 3));
    ik.raiseSignal(ik.signalFor(2));
    EXPECT_EQ(ik.activeVariant(), 2);
    EXPECT_EQ(ik.switchCount(), 1u);
    ik.raiseSignal(ik.signalFor(0));
    EXPECT_EQ(ik.activeVariant(), 0);
}

TEST(InstrumentedKernelTest, InvokeRunsActiveKnobs)
{
    InstrumentedKernel ik(pliant::kernels::makeKernel("raytrace", 3));
    const auto precise = ik.invoke();
    EXPECT_EQ(precise.inaccuracy, 0.0);
    ik.raiseSignal(ik.signalFor(ik.variantCount() - 1));
    const auto approx = ik.invoke();
    EXPECT_GE(approx.inaccuracy, 0.0);
}

TEST(InstrumentedKernelTest, SignalsStartAtSigrtmin)
{
    InstrumentedKernel ik(pliant::kernels::makeKernel("kmeans", 3));
    EXPECT_EQ(ik.signalFor(0), InstrumentedKernel::kFirstSignal);
    EXPECT_TRUE(ik.signals().isMapped(InstrumentedKernel::kFirstSignal));
}

TEST(OverheadModelTest, DrawsWithinConfiguredBounds)
{
    OverheadModel m;
    for (int i = 0; i < 1000; ++i) {
        const double o = m.drawAppOverhead();
        EXPECT_GE(o, m.params().minOverhead);
        EXPECT_LE(o, m.params().maxOverhead);
    }
}

TEST(OverheadModelTest, MeanNearPaperValue)
{
    OverheadModel m;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += m.drawAppOverhead();
    // Clamping skews the mean slightly below 3.8%; stay within band.
    EXPECT_NEAR(sum / n, 0.038, 0.008);
}

TEST(OverheadModelTest, DeterministicForSeed)
{
    OverheadModel a(OverheadParams{}, 9);
    OverheadModel b(OverheadParams{}, 9);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.drawAppOverhead(), b.drawAppOverhead());
}

TEST(OverheadModelTest, SwitchCostTotals)
{
    OverheadModel m;
    EXPECT_EQ(m.totalSwitchCost(0), 0);
    EXPECT_EQ(m.totalSwitchCost(10), 10 * m.switchCost());
}

TEST(OverheadModelTest, InvalidParamsAreFatal)
{
    OverheadParams bad;
    bad.meanOverhead = 0.10;
    bad.maxOverhead = 0.05;
    EXPECT_THROW(OverheadModel model(bad), pliant::util::FatalError);
}

} // namespace
