/**
 * @file
 * Learned runtime at cluster scale (beyond the paper): three
 * memcached+nginx nodes share six approximate applications; node 0's
 * memcached takes a flash crowd mid-run. The grid compares placement
 * policies (static round-robin vs QoS-pressure-aware migration)
 * under the vector-conditioned learned arbiter and its worst-ratio
 * ablation baseline.
 *
 * Two mechanisms this figure exercises end-to-end:
 *
 *  - migration-consistent model state: a migrated app carries its
 *    per-service learned slots inside the approx::TaskState
 *    checkpoint, so it resumes on the destination with estimates for
 *    every same-named tenant instead of relearning from scratch;
 *  - migrate-before-approximate: the QoS-aware policy reads each
 *    node's relief predictions (the learned model's per-service
 *    floors) and treats a node that cannot clear QoS by
 *    approximating as pressured even while actuation masks the
 *    violation.
 *
 * The whole grid runs as one driver::Sweep batch; per-node execution
 * is deterministic at any thread count, so the table is
 * byte-identical run to run.
 */

#include <iostream>

#include "cluster/cluster.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

cluster::ClusterConfig
makeConfig(cluster::PlacementKind placement, bool vector_model,
           bool quick)
{
    const sim::Time s = sim::kSecond;
    cluster::ClusterConfigBuilder builder;
    for (int n = 0; n < 3; ++n) {
        builder.node();
        if (n == 0) {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::flashCrowd(
                                0.45, 0.97, 20 * s, 3 * s, 40 * s,
                                10 * s));
        } else {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::constant(0.45));
        }
        builder.service(services::ServiceKind::Nginx,
                        colo::Scenario::constant(0.45));
    }
    builder
        .apps({"canneal", "bayesian", "snp", "kmeans", "raytrace",
               "streamcluster"})
        .runtime(core::RuntimeKind::Learned)
        .learnedVector(vector_model)
        .placement(placement)
        .epoch(5 * s)
        .seed(71);
    builder.maxDuration((quick ? 90 : 150) * s);
    return builder.build();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    std::cout << "=== Learned arbiter at cluster scale: 3 nodes x "
                 "(memcached + nginx) + 6 apps ===\n\n";

    std::vector<cluster::ClusterConfig> configs;
    std::vector<std::string> labels;
    for (auto placement : {cluster::PlacementKind::Static,
                           cluster::PlacementKind::QosAware}) {
        for (const bool vector_model : {true, false}) {
            configs.push_back(
                makeConfig(placement, vector_model, quick));
            labels.push_back(
                cluster::placementName(placement) +
                (vector_model ? "/vector" : "/worst-ratio"));
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "learned-cluster";
    const auto results = cluster::runClusters(configs, sweep);

    cluster::clusterTable(labels, results).print(std::cout);
    for (std::size_t i = 0; i < results.size(); ++i)
        for (const auto &mig : results[i].migrations)
            std::cout << labels[i] << ": migrated " << mig.app
                      << " node" << mig.from << " -> node" << mig.to
                      << " at t=" << sim::toSeconds(mig.t) << " s\n";

    std::cout
        << "\nReading: under the learned runtime the QoS-aware "
           "policy migrates an app off the crowded node at an epoch "
           "boundary — and because the learned model's relief "
           "predictions flow into the placement layer, it can do so "
           "even while deep approximation temporarily masks the "
           "violation (migrate-before-approximate). The migrant "
           "carries its per-service model slots in the checkpoint, "
           "so it lands warm on the destination's same-named "
           "tenants. The worst-ratio columns are the ablation: same "
           "placement machinery, scalar-conditioned estimates.\n";
    return 0;
}
