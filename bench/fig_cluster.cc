/**
 * @file
 * Cluster placement sweep (beyond the paper): three nodes, each
 * hosting memcached + nginx, sharing six approximate applications.
 * One node's memcached takes a flash crowd mid-run; the sweep
 * compares placement policies (static round-robin, least-loaded LPT,
 * QoS-pressure-aware with migration) under the precise baseline and
 * the Pliant runtime. The whole grid runs as one batch through
 * driver::Sweep; per-node execution is deterministic at any thread
 * count, so the table is byte-identical run to run.
 *
 * `--trace-out FILE` additionally runs the QoS-aware Pliant cell
 * once more (outside the sweep, so the table is unaffected) with a
 * span tracer attached and writes a Chrome trace_event JSON —
 * loadable in Perfetto, validated by scripts/check_trace.py in CI.
 */

#include <fstream>
#include <iostream>

#include "cluster/cluster.hh"
#include "obs/trace.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

cluster::ClusterConfig
makeConfig(cluster::PlacementKind placement, core::RuntimeKind runtime,
           bool quick)
{
    const sim::Time s = sim::kSecond;
    cluster::ClusterConfigBuilder builder;
    for (int n = 0; n < 3; ++n) {
        builder.node();
        if (n == 0) {
            // The crowded node: memcached ramps to saturation.
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::flashCrowd(
                                0.60, 0.95, 30 * s, 3 * s, 25 * s,
                                10 * s));
        } else {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::constant(0.60));
        }
        builder.service(services::ServiceKind::Nginx,
                        colo::Scenario::constant(0.65));
    }
    builder
        .apps({"canneal", "bayesian", "snp", "kmeans", "raytrace",
               "streamcluster"})
        .runtime(runtime)
        .placement(placement)
        .epoch(5 * s)
        .seed(71);
    if (quick)
        builder.maxDuration(90 * s);
    return builder.build();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else {
            std::cerr << "usage: fig_cluster [--quick] "
                         "[--trace-out FILE]\n";
            return 2;
        }
    }
    std::cout << "=== Cluster placement: 3 nodes x (memcached + "
                 "nginx) + 6 approximate apps ===\n\n";

    const cluster::PlacementKind placements[] = {
        cluster::PlacementKind::Static,
        cluster::PlacementKind::LeastLoaded,
        cluster::PlacementKind::QosAware,
    };
    const core::RuntimeKind runtimes[] = {core::RuntimeKind::Precise,
                                          core::RuntimeKind::Pliant};

    std::vector<cluster::ClusterConfig> configs;
    std::vector<std::string> labels;
    for (auto placement : placements) {
        for (auto runtime : runtimes) {
            configs.push_back(makeConfig(placement, runtime, quick));
            labels.push_back(cluster::placementName(placement));
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "cluster";
    const auto results = cluster::runClusters(configs, sweep);

    cluster::clusterTable(labels, results).print(std::cout);
    std::cout
        << "\nReading: the precise baseline cannot defend the "
           "crowded node's QoS under any placement — only the "
           "runtime's approximation/core levers restore the tail. "
           "Under Pliant, work-balanced placements (least-loaded, "
           "qos-aware) beat static round-robin on the worst "
           "cluster-wide ratio, and the QoS-aware policy "
           "additionally migrates an app off the crowded node at an "
           "epoch boundary — placement churn the per-node control "
           "loops absorb without losing determinism.\n";

    if (!trace_out.empty()) {
        // A separate traced run of the most interesting cell
        // (QoS-aware + Pliant): epochs, migrations, and budget
        // allocations on the cluster track, decision intervals and
        // events on each node's engine tracks.
        std::ofstream os(trace_out);
        if (!os) {
            std::cerr << "error: cannot write " << trace_out << "\n";
            return 1;
        }
        obs::TraceWriter tracer(os);
        cluster::Cluster traced(makeConfig(
            cluster::PlacementKind::QosAware,
            core::RuntimeKind::Pliant, quick));
        traced.setTraceWriter(&tracer);
        traced.run();
        tracer.finish();
        std::cout << "\nwrote " << trace_out << " ("
                  << tracer.eventCount() << " trace events)\n";
    }
    return 0;
}
