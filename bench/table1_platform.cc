/**
 * @file
 * Table 1: platform specification of the (simulated) server.
 */

#include <iostream>

#include "server/spec.hh"
#include "util/table.hh"

int
main()
{
    pliant::server::ServerSpec spec;
    std::cout << "=== Table 1: Platform Specification ===\n\n";
    pliant::util::TextTable table({"Field", "Value"});
    for (const auto &[field, value] : spec.describe())
        table.addRow({field, value});
    table.print(std::cout);
    std::cout << "\nExperiment topology: one socket, "
              << spec.irqCores << " cores reserved for soft-irq, "
              << spec.usableCores()
              << " cores fairly shared across containers.\n";
    return 0;
}
