/**
 * @file
 * Datacenter-scale streaming-aggregation sweep: 1000 nodes, 10k
 * interactive tenants, run with per-tick retention OFF so the only
 * per-node state the run accumulates is the online rollups
 * (RunningStats / P² sketches / reservoir — see util/stats.hh and
 * the colo::Engine streaming accumulators).
 *
 * The bench demonstrates two contracts at scale:
 *
 *  - memory: the sweep completes under a pinned RSS ceiling
 *    (--rss-limit-mb; CI pins it) because nothing retains the
 *    10k-tenant per-tick series;
 *  - determinism: the cluster rollups (worst service ratio, merged
 *    steady-state P² p99, QoS fractions, app outcomes) are exactly
 *    equal — double-for-double — between the serial run, an N-thread
 *    node pool, and N engine tick-team lanes.
 *
 * Like perf_tick, the configuration is frozen: the committed
 * BENCH_scale.json is generated with --quick (the CI shape) and the
 * schema checker hard-fails if any deterministic field moves.
 *
 * Usage: fig_scale [--quick] [--threads N] [--out FILE]
 *                  [--rss-limit-mb M]
 *   --quick          12 s simulated horizon (CI smoke; default 60 s)
 *   --threads N      the parallel axis width (default 4): the pool
 *                    row runs N node-worker threads, the lanes row
 *                    runs N tick-team lanes per engine
 *   --out F          JSON output path (default BENCH_scale.json)
 *   --rss-limit-mb M exit 1 if the process peak RSS exceeds M MB
 *                    after all runs (0 = no check)
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

constexpr sim::Time kS = sim::kSecond;
constexpr std::size_t kNodes = 1000;
constexpr std::size_t kServicesPerNode = 10;

/** Process peak RSS in MB (Linux ru_maxrss is in KB). */
double
peakRssMb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * The frozen 1000-node, 10k-tenant shape: every node hosts 5
 * memcached + 5 nginx tenants at staggered constant loads, a dozen
 * catalog apps land via static placement (so all but 12 nodes are
 * app-less — the streaming summary path at scale), and the tick
 * equals the decision interval so the horizon stays tractable.
 */
cluster::ClusterConfig
scaleConfig(sim::Time horizon, unsigned pool_threads,
            unsigned engine_lanes)
{
    cluster::ClusterConfigBuilder builder;
    for (std::size_t n = 0; n < kNodes; ++n) {
        builder.node();
        for (std::size_t s = 0; s < kServicesPerNode; ++s) {
            const bool mc = s % 2 == 0;
            // Staggered by (node, slot) so the tenant mix is not
            // uniform across nodes, but stays a pure function of the
            // indices (determinism: no clock, no global RNG).
            const double load =
                0.40 + 0.03 * static_cast<double>((n + s) % 5);
            builder.service((mc ? "mc-" : "ngx-") + std::to_string(s),
                            mc ? services::ServiceKind::Memcached
                               : services::ServiceKind::Nginx,
                            colo::Scenario::constant(load));
        }
    }
    builder
        .apps({"canneal", "streamcluster", "bayesian", "kmeans",
               "snp", "raytrace", "fluidanimate", "water_nsquared",
               "birch", "genenet", "semphy", "plsa"})
        .runtime(core::RuntimeKind::Pliant)
        .placement(cluster::PlacementKind::Static)
        .tick(1 * kS)
        .decisionInterval(1 * kS)
        .epoch(5 * kS)
        .maxDuration(horizon)
        .seed(97)
        .threads(pool_threads)
        .engineThreads(engine_lanes);
    return builder.build();
}

/** One matrix cell: a full cluster run plus its rollups. */
struct Measurement
{
    std::string name;
    std::string description;
    unsigned poolThreads = 1;
    unsigned engineThreads = 1;
    double wallSeconds = 0.0;
    std::uint64_t ticks = 0;
    double peakRssMbAfter = 0.0;
    cluster::ClusterResult result;
    bool identicalToSerial = true;

    double
    ticksPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(ticks) / wallSeconds
            : 0.0;
    }
};

Measurement
runCell(const std::string &name, const std::string &description,
        sim::Time horizon, unsigned pool_threads,
        unsigned engine_lanes)
{
    Measurement m;
    m.name = name;
    m.description = description;
    m.poolThreads = pool_threads;
    m.engineThreads = engine_lanes;
    const cluster::ClusterConfig cfg =
        scaleConfig(horizon, pool_threads, engine_lanes);
    m.ticks = static_cast<std::uint64_t>(cfg.nodes.size()) *
        static_cast<std::uint64_t>(cfg.maxDuration / cfg.tick);
    cluster::Cluster c(cfg);
    const double t0 = now();
    m.result = c.run();
    m.wallSeconds = now() - t0;
    // ru_maxrss is a process-lifetime high-water mark: later cells
    // can only report >= earlier ones. The ceiling check uses the
    // final value, which is exactly the quantity CI pins.
    m.peakRssMbAfter = peakRssMb();
    return m;
}

/**
 * Exact comparison of every scalar rollup against the serial cell.
 * These are doubles out of the simulation, not timings: the
 * streaming-aggregation contract is == at any thread/lane count.
 */
bool
rollupsEqual(const cluster::ClusterResult &a,
             const cluster::ClusterResult &b)
{
    return a.worstServiceRatio == b.worstServiceRatio &&
        a.steadyP99Us == b.steadyP99Us &&
        a.meanQosMetFraction == b.meanQosMetFraction &&
        a.meanInaccuracy == b.meanInaccuracy &&
        a.meanRelativeExecTime == b.meanRelativeExecTime &&
        a.appsFinished == b.appsFinished &&
        a.appsTotal == b.appsTotal &&
        a.totalMaxCoresReclaimed == b.totalMaxCoresReclaimed &&
        a.migrations.size() == b.migrations.size();
}

void
writeJson(const std::string &path,
          const std::vector<Measurement> &results)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return;
    }
    out.precision(17);
    out << "{\n"
        << "  \"bench\": \"fig_scale\",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        out << "    {\n"
            << "      \"name\": \"" << m.name << "\",\n"
            << "      \"description\": \"" << m.description << "\",\n"
            << "      \"nodes\": " << kNodes << ",\n"
            << "      \"tenants\": " << kNodes * kServicesPerNode
            << ",\n"
            << "      \"pool_threads\": " << m.poolThreads << ",\n"
            << "      \"engine_threads\": " << m.engineThreads
            << ",\n"
            << "      \"ticks\": " << m.ticks << ",\n"
            << "      \"steady_p99_us\": " << m.result.steadyP99Us
            << ",\n"
            << "      \"worst_ratio\": " << m.result.worstServiceRatio
            << ",\n"
            << "      \"identical_to_serial\": "
            << (m.identicalToSerial ? "true" : "false") << ",\n"
            << "      \"wall_s\": " << m.wallSeconds << ",\n"
            << "      \"ticks_per_sec\": " << m.ticksPerSec() << ",\n"
            << "      \"peak_rss_mb\": " << m.peakRssMbAfter << "\n"
            << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Time horizon = 60 * kS;
    unsigned threads = 4;
    double rss_limit_mb = 0.0;
    std::string out_path = "BENCH_scale.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            horizon = 12 * kS;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::max(
                2U, static_cast<unsigned>(std::atoi(argv[++i])));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--rss-limit-mb" && i + 1 < argc) {
            rss_limit_mb = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: fig_scale [--quick] [--threads N] "
                         "[--out FILE] [--rss-limit-mb M]\n";
            return 2;
        }
    }

    std::cout << "=== fig_scale: " << kNodes << "-node, "
              << kNodes * kServicesPerNode
              << "-tenant streaming-aggregation sweep ===\n\n";

    const std::string shape = std::to_string(kNodes) + " nodes x " +
        std::to_string(kServicesPerNode) +
        " tenants, 12 static apps, streaming rollups";
    std::vector<Measurement> results;
    results.push_back(
        runCell("scale_serial", shape + ", serial", horizon, 1, 1));
    results.push_back(runCell(
        "scale_pool", shape + ", node pool", horizon, threads, 1));
    results.push_back(runCell(
        "scale_lanes", shape + ", tick-team lanes", horizon, 1,
        threads));
    for (Measurement &m : results)
        m.identicalToSerial =
            rollupsEqual(m.result, results.front().result);

    util::TextTable t({"config", "pool", "lanes", "wall s",
                       "ticks/s", "steady p99", "worst ratio",
                       "rss MB", "== serial"});
    for (const Measurement &m : results)
        t.addRow({m.name, std::to_string(m.poolThreads),
                  std::to_string(m.engineThreads),
                  util::fmt(m.wallSeconds, 2),
                  util::fmt(m.ticksPerSec() / 1e3, 1) + "k",
                  util::fmt(m.result.steadyP99Us, 1),
                  util::fmt(m.result.worstServiceRatio, 4),
                  util::fmt(m.peakRssMbAfter, 1),
                  m.identicalToSerial ? "yes" : "NO"});
    t.print(std::cout);

    writeJson(out_path, results);
    std::cout << "\nwrote " << out_path << "\n";

    bool ok = true;
    for (const Measurement &m : results)
        if (!m.identicalToSerial) {
            std::cerr << "FAIL: " << m.name
                      << " rollups differ from scale_serial — the "
                         "streaming aggregation is not "
                         "thread-count-invariant\n";
            ok = false;
        }
    const double peak = peakRssMb();
    if (rss_limit_mb > 0.0 && peak > rss_limit_mb) {
        std::cerr << "FAIL: peak RSS " << peak << " MB exceeds the "
                  << rss_limit_mb << " MB ceiling\n";
        ok = false;
    }
    return ok ? 0 : 1;
}
