/**
 * @file
 * Figure 9: sensitivity to Pliant's decision interval (0.2 s - 8 s),
 * for memcached colocated with the six PARSEC/SPLASH-2 applications.
 * The whole grid runs as one batch through the experiment driver.
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

int
main()
{
    std::cout << "=== Figure 9: Decision-interval sensitivity "
                 "(memcached) ===\n\n";
    const char *apps[] = {"fluidanimate", "canneal", "raytrace",
                          "water_nsquared", "water_spatial",
                          "streamcluster"};
    const double intervals_s[] = {0.2, 0.5, 1.0, 2.0,
                                  3.0, 4.0, 6.0, 8.0};

    std::vector<colo::ColoConfig> configs;
    for (const char *app : apps) {
        for (double s : intervals_s) {
            colo::ColoConfig cfg;
            cfg.service = services::ServiceKind::Memcached;
            cfg.apps = {app};
            cfg.runtime = core::RuntimeKind::Pliant;
            cfg.decisionInterval = sim::fromSeconds(s);
            cfg.seed = 43;
            configs.push_back(cfg);
        }
    }
    driver::SweepOptions sweep;
    sweep.label = "fig9";
    const auto results = colo::runColocations(configs, sweep);

    util::TextTable t({"app", "interval", "p99/QoS", "met%",
                       "rel exec", "inaccuracy", "switches"});
    std::size_t cell = 0;
    for (const char *app : apps) {
        for (double s : intervals_s) {
            const colo::ColoResult &r = results[cell++];
            t.addRow({app, util::fmt(s, 1) + "s",
                      util::fmt(r.steadyP99Us / r.qosUs, 2) + "x",
                      util::fmtPct(r.qosMetFraction, 0),
                      util::fmt(r.apps[0].relativeExecTime, 2),
                      util::fmtPct(r.apps[0].inaccuracy, 1),
                      std::to_string(r.apps[0].switches)});
        }
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: intervals above 1 s leave the "
                 "service in prolonged violation before Pliant reacts; "
                 "intervals of 1 s or less satisfy QoS without extra "
                 "cost because switching is cheap.\n";
    return 0;
}
