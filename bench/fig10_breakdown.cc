/**
 * @file
 * Figure 10: breakdown of how much actuation each service needed —
 * the fraction of colocations resolved by approximation alone versus
 * those requiring 1, 2, 3, or 4+ reclaimed cores. Covers all single-
 * app colocations plus sampled 2- and 3-app mixes, as in the paper.
 * Each service's full config set runs as one driver batch.
 */

#include <algorithm>
#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace pliant;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const int mixes_per_arity = quick ? 8 : 40;
    std::cout << "=== Figure 10: Approximation-only vs core "
                 "reclamation breakdown ===\n\n";

    const auto names = approx::catalogNames();
    util::TextTable t({"service", "approx only", "1 core", "2 cores",
                       "3 cores", "4+ cores", "runs"});
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb}) {
        std::vector<colo::ColoConfig> configs;
        for (const auto &name : names)
            configs.push_back(colo::makeColoConfig(
                kind, {name}, core::RuntimeKind::Pliant, 47));

        // The mix sampling RNG is seeded independently of the sweep,
        // so the config list (and thus the output) is identical at
        // any thread count.
        util::Rng rng(53);
        for (int arity = 2; arity <= 3; ++arity) {
            for (int s = 0; s < mixes_per_arity; ++s) {
                std::vector<std::string> mix;
                while (static_cast<int>(mix.size()) < arity) {
                    const auto &cand = names[static_cast<std::size_t>(
                        rng.uniformInt(names.size()))];
                    if (std::find(mix.begin(), mix.end(), cand) ==
                        mix.end())
                        mix.push_back(cand);
                }
                configs.push_back(colo::makeColoConfig(
                    kind, mix, core::RuntimeKind::Pliant,
                    47 + static_cast<std::uint64_t>(s)));
            }
        }

        driver::SweepOptions sweep;
        sweep.label = "fig10-" + services::serviceName(kind);
        const auto results = colo::runColocations(configs, sweep);

        int buckets[5] = {0, 0, 0, 0, 0};
        for (const auto &r : results)
            ++buckets[std::min(r.typicalCoresReclaimed, 4)];
        const int runs = static_cast<int>(results.size());

        std::vector<std::string> row{services::serviceName(kind)};
        for (int b = 0; b < 5; ++b)
            row.push_back(util::fmtPct(
                static_cast<double>(buckets[b]) / runs, 0));
        row.push_back(std::to_string(runs));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nExpected shape (paper): NGINX resolves ~1/3 of "
                 "colocations with approximation alone; memcached "
                 "almost always needs at least one core; MongoDB is "
                 "the most amenable (approximation alone or one core "
                 "in the majority of cases); 3+ cores are rare.\n";
    return 0;
}
