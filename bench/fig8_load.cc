/**
 * @file
 * Figure 8: sensitivity to input load (QPS). For each interactive
 * service, sweep the offered load from 40% to 100% of saturation and
 * report the tail latency and each colocated app's execution time.
 * Also reports the max load at which QoS is met in precise-only mode
 * (the paper's 340K / 280K / 310 QPS crossovers). Both grids run as
 * one batch per service through the experiment driver.
 */

#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

/** Representative subset for the per-app sweep (keeps runtime low). */
const char *kApps[] = {"fluidanimate", "canneal", "raytrace",
                       "water_spatial", "bayesian", "kmeans",
                       "snp", "plsa"};

const double kLoads[] = {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

std::string
qpsLabel(services::ServiceKind kind, double load)
{
    const double sat = services::defaultConfig(kind).saturationQps;
    const double qps = load * sat;
    if (qps >= 1e3)
        return util::fmt(qps / 1e3, 0) + "K";
    return util::fmt(qps, 0);
}

void
sweepService(services::ServiceKind kind)
{
    std::cout << "--- " << services::serviceName(kind) << " ---\n";

    std::vector<colo::ColoConfig> configs;
    for (const char *app : kApps)
        for (double load : kLoads)
            configs.push_back(colo::makeColoConfig(
                kind, {app}, core::RuntimeKind::Pliant, 37, load));

    // Precise-only crossover grid: the highest load at which QoS is
    // still met with a precise co-runner (canneal, the toughest one).
    std::vector<double> crossover_loads;
    for (double load = 0.30; load <= 1.0; load += 0.02)
        crossover_loads.push_back(load);
    for (double load : crossover_loads)
        configs.push_back(colo::makeColoConfig(
            kind, {"canneal"}, core::RuntimeKind::Precise, 37, load));

    driver::SweepOptions sweep;
    sweep.label = "fig8-" + services::serviceName(kind);
    const auto results = colo::runColocations(configs, sweep);

    util::TextTable t({"app", "load", "QPS", "pliant p99/QoS",
                       "rel exec", "inaccuracy", "cores"});
    std::size_t cell = 0;
    for (const char *app : kApps) {
        for (double load : kLoads) {
            const colo::ColoResult &r = results[cell++];
            t.addRow({app, util::fmtPct(load, 0), qpsLabel(kind, load),
                      util::fmt(r.meanIntervalP99Us / r.qosUs, 2) + "x",
                      util::fmt(r.apps[0].relativeExecTime, 2),
                      util::fmtPct(r.apps[0].inaccuracy, 1),
                      std::to_string(r.maxCoresReclaimedTotal)});
        }
    }
    t.print(std::cout);

    double crossover = 0.0;
    for (double load : crossover_loads) {
        const colo::ColoResult &r = results[cell++];
        if (r.steadyP99Us <= r.qosUs)
            crossover = load;
    }
    std::cout << "precise-only QoS crossover (canneal co-runner): "
              << util::fmtPct(crossover, 0) << " of saturation ("
              << qpsLabel(kind, crossover) << " QPS)\n\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 8: Input-load sensitivity (40-100% of "
                 "saturation) ===\n\n";
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb})
        sweepService(kind);
    std::cout << "Expected shape: below ~60% load the apps run mostly "
                 "precise; 60-80% needs approximation (and cores for "
                 "memcached); >90% violates QoS regardless.\n";
    return 0;
}
