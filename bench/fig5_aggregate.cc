/**
 * @file
 * Figure 5: aggregate comparison of the Precise baseline vs Pliant
 * across all 24 approximate applications and 3 interactive services.
 *
 * For each pair it prints: the baseline and Pliant tail latency
 * (bars), the approximate app's execution time relative to nominal
 * (markers), its output inaccuracy (marker labels), and the
 * DynamoRIO-substitute instrumentation overhead (whiskers). Also
 * reports the Section 6.2 aggregates: violation ranges in precise
 * mode, average/max inaccuracy, and average/max dynrec overhead.
 *
 * All 24 x 3 x 2 experiments run as one batch through the parallel
 * experiment driver; results come back in config order so the
 * printed tables are identical at any thread count.
 */

#include <algorithm>
#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

int
main()
{
    std::cout << "=== Figure 5: Precise vs Pliant across 24 apps x 3 "
                 "services ===\n\n";
    const services::ServiceKind kinds[] = {
        services::ServiceKind::Nginx,
        services::ServiceKind::Memcached,
        services::ServiceKind::MongoDb,
    };

    // One precise + one pliant config per (service, app) cell.
    std::vector<colo::ColoConfig> configs;
    for (auto kind : kinds) {
        for (const auto &prof : approx::catalog()) {
            configs.push_back(colo::makeColoConfig(
                kind, {prof.name}, core::RuntimeKind::Precise, 31));
            configs.push_back(colo::makeColoConfig(
                kind, {prof.name}, core::RuntimeKind::Pliant, 31));
        }
    }
    driver::SweepOptions sweep;
    sweep.label = "fig5";
    const auto results = colo::runColocations(configs, sweep);

    double inacc_sum = 0.0, inacc_max = 0.0;
    double ovh_sum = 0.0, ovh_max = 0.0;
    int n = 0;

    std::size_t cell = 0;
    for (auto kind : kinds) {
        double viol_min = 1e18, viol_max = 0.0;
        int qos_ok = 0;
        std::cout << "--- " << services::serviceName(kind)
                  << " (QoS "
                  << util::fmt(
                         services::defaultConfig(kind).qosUs / 1000.0, 2)
                  << " ms) ---\n";
        util::TextTable t({"app", "precise p99/QoS", "pliant p99/QoS",
                           "rel exec", "inaccuracy", "dynrec ovh",
                           "cores"});
        for (const auto &prof : approx::catalog()) {
            const auto &prec = results[cell++];
            const auto &pli = results[cell++];

            const double prec_ratio = prec.steadyP99Us / prec.qosUs;
            const double pli_ratio =
                pli.meanIntervalP99Us / pli.qosUs;
            viol_min = std::min(viol_min, prec_ratio);
            viol_max = std::max(viol_max, prec_ratio);
            qos_ok += pli_ratio <= 1.0 ? 1 : 0;

            const auto &app = pli.apps[0];
            inacc_sum += app.inaccuracy;
            inacc_max = std::max(inacc_max, app.inaccuracy);
            ovh_sum += app.dynrecOverhead;
            ovh_max = std::max(ovh_max, app.dynrecOverhead);
            ++n;

            t.addRow({prof.name, util::fmt(prec_ratio, 2) + "x",
                      util::fmt(pli_ratio, 2) + "x",
                      util::fmt(app.relativeExecTime, 2),
                      util::fmtPct(app.inaccuracy, 1),
                      util::fmtPct(app.dynrecOverhead, 1),
                      std::to_string(pli.maxCoresReclaimedTotal)});
        }
        t.print(std::cout);
        std::cout << "precise violations: "
                  << util::fmt(viol_min, 2) << "x - "
                  << util::fmt(viol_max, 2)
                  << "x | pliant meets QoS (interval mean) for "
                  << qos_ok << "/24 apps\n\n";
    }

    std::cout << "=== Section 6.2 aggregates ===\n";
    std::cout << "average inaccuracy "
              << util::fmtPct(inacc_sum / n, 1) << " (paper: 2.1%), max "
              << util::fmtPct(inacc_max, 1)
              << " (paper: 5.4%, canneal+memcached)\n";
    std::cout << "average dynrec overhead "
              << util::fmtPct(ovh_sum / n, 1) << " (paper: 3.8%), max "
              << util::fmtPct(ovh_max, 1) << " (paper: 8.9%)\n";
    return 0;
}
