/**
 * @file
 * Google-benchmark microbenchmarks of the real approximate kernels:
 * wall time of precise execution vs representative approximate
 * variants (supporting data for Fig. 1's odd rows).
 */

#include <benchmark/benchmark.h>

#include "kernels/kernel.hh"

namespace {

using pliant::kernels::Knobs;
using pliant::kernels::Precision;

void
runKernel(benchmark::State &state, const std::string &name,
          const Knobs &knobs)
{
    auto kernel = pliant::kernels::makeKernel(name, 42);
    // Warm the precise reference outside the timed region.
    kernel->run(Knobs{});
    double inaccuracy = 0.0;
    for (auto _ : state) {
        const auto res = kernel->run(knobs);
        inaccuracy = res.inaccuracy;
        benchmark::DoNotOptimize(res.outputMetric);
    }
    state.counters["inaccuracy_pct"] = 100.0 * inaccuracy;
}

void
registerAll()
{
    const struct
    {
        const char *suffix;
        Knobs knobs;
    } variants[] = {
        {"precise", Knobs{}},
        {"p2", Knobs{2, Precision::Double, false}},
        {"p4", Knobs{4, Precision::Double, false}},
        {"p4_float", Knobs{4, Precision::Float, false}},
    };
    for (const auto &entry : pliant::kernels::kernelRegistry()) {
        for (const auto &v : variants) {
            const std::string label = entry.name + "/" + v.suffix;
            benchmark::RegisterBenchmark(
                label.c_str(),
                [name = entry.name, knobs = v.knobs](
                    benchmark::State &st) {
                    runKernel(st, name, knobs);
                })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
