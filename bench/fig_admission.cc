/**
 * @file
 * The shed-vs-approximate frontier (beyond the paper): when is it
 * better to shape the *request stream* (queue, batch, shed) than to
 * degrade the *batch apps* (approximate, reclaim cores)?
 *
 * The grid colocates a flash-crowded / overloaded memcached with a
 * constant-load nginx and two approximate apps under the Pliant
 * runtime, and sweeps {admission policy x batching policy x load
 * scenario}. "off" rows are the approximate-only baseline (admission
 * disabled — exactly the pre-admission engine). The whole grid runs
 * as one batch through driver::Sweep.
 *
 * Reading guide: under sustained overload the approximate-only
 * baseline can only burn app quality (deep approximation + core
 * reclamation) against a queue it cannot see, while the QoS-guided
 * shed drops the small overload slice that even full approximation
 * cannot absorb — better worst-service QoS at lower quality cost.
 * A second table pairs the learned runtime with QosShed: its relief
 * predictions feed the shed decision directly (shedding and
 * approximation coordinate instead of double-actuating).
 */

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

constexpr sim::Time kS = sim::kSecond;

struct ScenarioCase
{
    const char *label;
    colo::Scenario memcached;
};

std::vector<ScenarioCase>
scenarioCases(bool quick)
{
    // A quiet multi-tenant box (both services at 45% of saturation —
    // no contention-driven violations) hit by a memcached flash
    // crowd at t = 10 s, 3 s ramp, 25 s hold, 5 s decay: early
    // enough that the colocated apps (~40-55 nominal seconds) live
    // through the whole excursion. The peak is the axis:
    //  - 1.15: past saturation, but within what QoS-guided shedding
    //    absorbs at the 0.85 utilization target — the frontier cell
    //    where shedding strictly beats approximating;
    //  - 1.30: past the 50% max-shed cap, so unbatched shedding
    //    alone no longer saves QoS (the frontier's far side —
    //    batching's amortized capacity pushes it back);
    //  - 0.90: under nominal saturation, but over the
    //    contention-inflated capacity while the apps still run
    //    precise — the overload a co-located front-end actually
    //    sees.
    using colo::Scenario;
    const auto crowd = [](double peak) {
        return Scenario::flashCrowd(0.45, peak, 10 * kS, 3 * kS,
                                    25 * kS, 5 * kS);
    };
    std::vector<ScenarioCase> cases = {{"flash-1.15", crowd(1.15)},
                                       {"flash-1.30", crowd(1.30)}};
    if (!quick)
        cases.push_back({"flash-0.90", crowd(0.90)});
    return cases;
}

struct AdmissionCase
{
    const char *label;
    /** Disengaged = approximate-only baseline. */
    std::optional<admission::AdmissionKind> policy;
};

std::vector<AdmissionCase>
admissionCases()
{
    return {
        {"off", std::nullopt},
        {"accept-all", admission::AdmissionKind::AcceptAll},
        {"drop-tail", admission::AdmissionKind::DropTail},
        {"prob-shed", admission::AdmissionKind::ProbabilisticShed},
        {"qos-shed", admission::AdmissionKind::QosShed},
    };
}

struct BatchingCase
{
    const char *label;
    admission::BatchingKind kind;
};

std::vector<BatchingCase>
batchingCases(bool quick)
{
    std::vector<BatchingCase> cases = {
        {"none", admission::BatchingKind::None}};
    if (!quick) {
        cases.push_back({"fixed:16", admission::BatchingKind::Fixed});
        cases.push_back(
            {"adaptive:50us", admission::BatchingKind::Adaptive});
    }
    return cases;
}

colo::ColoConfig
makeConfig(const ScenarioCase &sc,
           const std::optional<admission::AdmissionKind> &policy,
           admission::BatchingKind batching, core::RuntimeKind runtime)
{
    colo::ServiceSpec mc;
    mc.kind = services::ServiceKind::Memcached;
    mc.scenario = sc.memcached;
    colo::ServiceSpec ngx;
    ngx.kind = services::ServiceKind::Nginx;
    ngx.scenario = colo::Scenario::constant(0.45);
    colo::ColoConfig cfg = colo::makeMultiServiceConfig(
        {mc, ngx}, {"canneal", "bayesian"}, runtime, 71);
    cfg.maxDuration = 240 * kS;
    if (policy) {
        cfg.admission.enabled = true;
        cfg.admission.policy = *policy;
        cfg.admission.batching = batching;
        cfg.admission.batchSize = 16;
        cfg.admission.batchTimeoutUs = 50.0;
    }
    return cfg;
}

void
addRow(util::TextTable &t, const std::string &scenario,
       const std::string &adm, const std::string &batching,
       const colo::ColoResult &r)
{
    const auto &mc = r.services[0];
    const auto &ngx = r.services[1];
    double inacc = 0.0;
    for (const auto &app : r.apps)
        inacc += app.inaccuracy;
    inacc /= static_cast<double>(r.apps.size());
    t.addRow({scenario, adm, batching,
              util::fmt(mc.meanIntervalP99Us / mc.qosUs, 2) + "x",
              util::fmtPct(mc.qosMetFraction, 0),
              util::fmtPct(mc.shedFraction, 1),
              util::fmt(mc.meanQueueDelayUs, 0),
              util::fmtPct(ngx.qosMetFraction, 0),
              util::fmtPct(inacc, 2),
              std::to_string(r.maxCoresReclaimedTotal)});
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    std::cout << "=== Admission control & batching: the "
                 "shed-vs-approximate frontier ===\n\n";

    const auto scenarios = scenarioCases(quick);
    const auto admissions = admissionCases();
    const auto batchings = batchingCases(quick);

    std::vector<colo::ColoConfig> configs;
    for (const auto &sc : scenarios)
        for (const auto &adm : admissions)
            for (const auto &bat : batchings) {
                // Batching needs a queue: the baseline has none.
                if (!adm.policy && bat.kind !=
                                       admission::BatchingKind::None)
                    continue;
                configs.push_back(makeConfig(sc, adm.policy, bat.kind,
                                             core::RuntimeKind::Pliant));
            }

    driver::SweepOptions sweep;
    sweep.label = "fig-admission";
    auto results = colo::runColocations(configs, sweep);

    util::TextTable t({"scenario", "admission", "batching",
                       "mc p99/QoS", "met%", "shed%", "qdelay us",
                       "nginx met%", "inaccuracy", "cores"});
    std::size_t cell = 0;
    for (const auto &sc : scenarios)
        for (const auto &adm : admissions)
            for (const auto &bat : batchings) {
                if (!adm.policy && bat.kind !=
                                       admission::BatchingKind::None)
                    continue;
                addRow(t, sc.label, adm.label, bat.label,
                       results[cell++]);
            }
    t.print(std::cout);

    // The coordination table: the learned runtime publishes relief
    // predictions; QosShed consults them, so shedding starts exactly
    // when the model says approximation cannot clear QoS.
    std::cout << "\n--- QoS-guided shed x learned relief "
                 "predictions ---\n\n";
    std::vector<colo::ColoConfig> learned_configs;
    for (const auto &sc : scenarios) {
        learned_configs.push_back(
            makeConfig(sc, std::nullopt,
                       admission::BatchingKind::None,
                       core::RuntimeKind::Learned));
        learned_configs.push_back(
            makeConfig(sc, admission::AdmissionKind::QosShed,
                       admission::BatchingKind::None,
                       core::RuntimeKind::Learned));
    }
    driver::SweepOptions learned_sweep;
    learned_sweep.label = "fig-admission-learned";
    auto learned_results =
        colo::runColocations(learned_configs, learned_sweep);

    util::TextTable lt({"scenario", "admission", "batching",
                        "mc p99/QoS", "met%", "shed%", "qdelay us",
                        "nginx met%", "inaccuracy", "cores"});
    cell = 0;
    for (const auto &sc : scenarios) {
        addRow(lt, sc.label, "off", "none", learned_results[cell++]);
        addRow(lt, sc.label, "qos-shed", "none",
               learned_results[cell++]);
    }
    lt.print(std::cout);

    std::cout
        << "\nReading: at flash-1.15 the approximate-only baseline "
           "burns app quality and reclaims cores against an overload "
           "that lives in the request stream (and still misses QoS "
           "through the crowd), while qos-shed drops the excess at "
           "the front door — strictly better worst-service QoS at a "
           "strictly lower quality cost, with no cores taken. At "
           "flash-1.30 the 50% max-shed cap binds and unbatched "
           "shedding no longer saves QoS — until batching's "
           "amortization buys the missing capacity (qos-shed + "
           "fixed/adaptive). Even the nominally sub-saturation "
           "crowd (flash-0.90) overloads the contention-inflated "
           "service, so the frontier starts below load 1.0 on a "
           "colocated box.\n";
    return 0;
}
