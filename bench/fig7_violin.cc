/**
 * @file
 * Figure 7: distributions (five-number summaries, the data behind
 * the paper's violin plots) of interactive tail latency, approximate
 * execution time, and inaccuracy, across colocations with 1, 2, and
 * 3 approximate applications per service.
 *
 * The paper sweeps all 2- and 3-way combinations of the 24 apps; to
 * keep the bench's runtime in seconds we run all 24 singles and a
 * deterministic sample of the 2-/3-way mixes per service. The mixes
 * are drawn up front with a fixed-seed Rng, then every experiment in
 * the bench runs as one batch through the parallel experiment
 * driver, so the summaries are identical at any thread count.
 */

#include <algorithm>
#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

struct Dist
{
    std::vector<double> latency; // p99 / QoS
    std::vector<double> exec;    // relative execution time
    std::vector<double> inacc;   // fraction
};

void
accumulate(Dist &dist, const colo::ColoResult &r)
{
    dist.latency.push_back(r.meanIntervalP99Us / r.qosUs);
    for (const auto &app : r.apps) {
        dist.exec.push_back(app.relativeExecTime);
        dist.inacc.push_back(app.inaccuracy);
    }
}

std::string
fiveNum(const std::vector<double> &v, int precision = 2)
{
    const auto f = util::FiveNumber::of(v);
    return "[" + util::fmt(f.min, precision) + ", " +
           util::fmt(f.q1, precision) + ", " +
           util::fmt(f.median, precision) + ", " +
           util::fmt(f.q3, precision) + ", " +
           util::fmt(f.max, precision) + "]";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const int samples = quick ? 10 : 60;
    std::cout << "=== Figure 7: Violin distributions for 1-, 2-, 3-app "
                 "colocations ===\n";
    std::cout << "Five-number summaries [min, q1, median, q3, max]; "
              << samples << " sampled mixes per arity.\n\n";

    const auto names = approx::catalogNames();
    const services::ServiceKind kinds[] = {
        services::ServiceKind::Nginx,
        services::ServiceKind::Memcached,
        services::ServiceKind::MongoDb,
    };

    // Assemble every (service, arity) experiment list up front. The
    // mix sampling replicates the original serial bench: one Rng per
    // service, consumed in arity order.
    std::vector<colo::ColoConfig> configs;
    // arityStart[s][a-1]: index of the first config of (service s,
    // arity a); each arity block's length is known from its app lists.
    std::vector<std::vector<std::size_t>> arityStart(
        std::size(kinds), std::vector<std::size_t>(3, 0));
    for (std::size_t s = 0; s < std::size(kinds); ++s) {
        util::Rng rng(77);
        for (int arity = 1; arity <= 3; ++arity) {
            arityStart[s][static_cast<std::size_t>(arity - 1)] =
                configs.size();
            if (arity == 1) {
                for (const auto &name : names)
                    configs.push_back(colo::makeColoConfig(
                        kinds[s], {name}, core::RuntimeKind::Pliant,
                        41));
            } else {
                for (int smp = 0; smp < samples; ++smp) {
                    std::vector<std::string> mix;
                    while (static_cast<int>(mix.size()) < arity) {
                        const auto &cand =
                            names[static_cast<std::size_t>(
                                rng.uniformInt(names.size()))];
                        if (std::find(mix.begin(), mix.end(), cand) ==
                            mix.end())
                            mix.push_back(cand);
                    }
                    configs.push_back(colo::makeColoConfig(
                        kinds[s], mix, core::RuntimeKind::Pliant,
                        41 + static_cast<std::uint64_t>(smp)));
                }
            }
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "fig7";
    const auto results = colo::runColocations(configs, sweep);

    for (std::size_t s = 0; s < std::size(kinds); ++s) {
        util::TextTable t({"apps", "p99/QoS (violin)",
                           "rel exec (violin)", "inaccuracy% (violin)"});
        for (int arity = 1; arity <= 3; ++arity) {
            const std::size_t begin =
                arityStart[s][static_cast<std::size_t>(arity - 1)];
            const std::size_t count = arity == 1
                ? names.size()
                : static_cast<std::size_t>(samples);
            Dist dist;
            for (std::size_t i = begin; i < begin + count; ++i)
                accumulate(dist, results[i]);
            std::vector<double> inacc_pct;
            for (double x : dist.inacc)
                inacc_pct.push_back(100.0 * x);
            t.addRow({std::to_string(arity), fiveNum(dist.latency),
                      fiveNum(dist.exec), fiveNum(inacc_pct, 1)});
        }
        std::cout << "--- " << services::serviceName(kinds[s])
                  << " ---\n";
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Expected shape (paper Section 6.3): inaccuracy and "
                 "execution-time violins tighten (centralize) as the "
                 "number of colocated apps grows, and MongoDB imposes "
                 "the lowest impact.\n";
    return 0;
}
