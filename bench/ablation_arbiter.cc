/**
 * @file
 * Ablation (Section 6.5 extension): the paper's round-robin
 * multi-application arbiter vs the impact-aware arbiter that
 * escalates the app with the best contention-relief per unit quality
 * loss. Compares QoS, aggregate inaccuracy, and fairness across
 * sampled 2- and 3-app mixes, one driver batch per (service,
 * arbiter) combination.
 */

#include <algorithm>
#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

struct ArbiterStats
{
    util::RunningStats latency;  // p99 / QoS
    util::RunningStats inacc;    // mean inaccuracy per run
    util::RunningStats spread;   // max-min inaccuracy per run
};

void
runMixes(services::ServiceKind kind, core::ArbiterKind arbiter,
         ArbiterStats &stats, int mixes)
{
    const auto names = approx::catalogNames();
    util::Rng rng(61);
    std::vector<colo::ColoConfig> configs;
    for (int arity = 2; arity <= 3; ++arity) {
        for (int s = 0; s < mixes; ++s) {
            std::vector<std::string> mix;
            while (static_cast<int>(mix.size()) < arity) {
                const auto &cand = names[static_cast<std::size_t>(
                    rng.uniformInt(names.size()))];
                if (std::find(mix.begin(), mix.end(), cand) ==
                    mix.end())
                    mix.push_back(cand);
            }
            colo::ColoConfig cfg;
            cfg.service = kind;
            cfg.apps = mix;
            cfg.arbiter = arbiter;
            cfg.seed = 61 + static_cast<std::uint64_t>(s);
            configs.push_back(cfg);
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "ablation-arbiter";
    for (const auto &r : colo::runColocations(configs, sweep)) {
        stats.latency.add(r.meanIntervalP99Us / r.qosUs);
        double lo = 1.0, hi = 0.0, sum = 0.0;
        for (const auto &app : r.apps) {
            lo = std::min(lo, app.inaccuracy);
            hi = std::max(hi, app.inaccuracy);
            sum += app.inaccuracy;
        }
        stats.inacc.add(sum / static_cast<double>(r.apps.size()));
        stats.spread.add(hi - lo);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const int mixes = quick ? 6 : 25;
    std::cout << "=== Ablation: round-robin vs impact-aware arbiter "
                 "(Section 6.5) ===\n\n";
    util::TextTable t({"service", "arbiter", "p99/QoS (mean)",
                       "inaccuracy (mean)", "unfairness (mean)"});
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb}) {
        for (auto arbiter : {core::ArbiterKind::RoundRobin,
                             core::ArbiterKind::ImpactAware}) {
            ArbiterStats stats;
            runMixes(kind, arbiter, stats, mixes);
            t.addRow({services::serviceName(kind),
                      arbiter == core::ArbiterKind::RoundRobin
                          ? "round-robin"
                          : "impact-aware",
                      util::fmt(stats.latency.mean(), 2) + "x",
                      util::fmtPct(stats.inacc.mean(), 2),
                      util::fmtPct(stats.spread.mean(), 2)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading: impact-aware tends to buy the same QoS "
                 "with lower aggregate quality loss, at the cost of "
                 "concentrating the loss on fewer applications "
                 "(higher unfairness) — exactly the trade-off the "
                 "paper defers to future work.\n";
    return 0;
}
