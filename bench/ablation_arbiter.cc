/**
 * @file
 * Two arbiter ablations beyond the paper:
 *
 *  1. Section 6.5 extension: the paper's round-robin
 *     multi-application arbiter vs the impact-aware arbiter that
 *     escalates the app with the best contention-relief per unit
 *     quality loss. Compares QoS, aggregate inaccuracy, and fairness
 *     across sampled 2- and 3-app mixes, one driver batch per
 *     (service, arbiter) combination.
 *
 *  2. Learned-model conditioning: the vector-conditioned learned
 *     arbiter (one model slot per tenant, actuation requires every
 *     tenant to clear the target) vs the collapsed worst-ratio
 *     baseline, on pinned two-tenant scenarios where the worst
 *     service's identity alternates. The pinned rows are the ones
 *     tests/colo/learned_ablation_test.cc locks down: on
 *     bayesian@(0.68, 0.62) the vector arbiter picks different
 *     variants with a strictly lower worst-service ratio AND lower
 *     inaccuracy; on canneal@(0.66, 0.58) it gives back 10x quality
 *     the scalar mixture keeps burning after a transient.
 */

#include <algorithm>
#include <iostream>

#include "approx/profile.hh"
#include "colo/builder.hh"
#include "colo/engine.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

struct ArbiterStats
{
    util::RunningStats latency;  // p99 / QoS
    util::RunningStats inacc;    // mean inaccuracy per run
    util::RunningStats spread;   // max-min inaccuracy per run
};

void
runMixes(services::ServiceKind kind, core::ArbiterKind arbiter,
         ArbiterStats &stats, int mixes)
{
    const auto names = approx::catalogNames();
    util::Rng rng(61);
    std::vector<colo::ColoConfig> configs;
    for (int arity = 2; arity <= 3; ++arity) {
        for (int s = 0; s < mixes; ++s) {
            std::vector<std::string> mix;
            while (static_cast<int>(mix.size()) < arity) {
                const auto &cand = names[static_cast<std::size_t>(
                    rng.uniformInt(names.size()))];
                if (std::find(mix.begin(), mix.end(), cand) ==
                    mix.end())
                    mix.push_back(cand);
            }
            colo::ColoConfig cfg;
            cfg.service = kind;
            cfg.apps = mix;
            cfg.arbiter = arbiter;
            cfg.seed = 61 + static_cast<std::uint64_t>(s);
            configs.push_back(cfg);
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "ablation-arbiter";
    for (const auto &r : colo::runColocations(configs, sweep)) {
        stats.latency.add(r.meanIntervalP99Us / r.qosUs);
        double lo = 1.0, hi = 0.0, sum = 0.0;
        for (const auto &app : r.apps) {
            lo = std::min(lo, app.inaccuracy);
            hi = std::max(hi, app.inaccuracy);
            sum += app.inaccuracy;
        }
        stats.inacc.add(sum / static_cast<double>(r.apps.size()));
        stats.spread.add(hi - lo);
    }
}

/** One pinned two-tenant scenario of the conditioning ablation. */
struct ConditioningScenario
{
    const char *app;
    double mcLoad;
    double ngLoad;
    std::uint64_t seed;
};

void
learnedConditioningTable(std::ostream &os)
{
    const sim::Time s = sim::kSecond;
    const ConditioningScenario scenarios[] = {
        {"bayesian", 0.68, 0.62, 15},
        {"canneal", 0.66, 0.58, 2},
        {"canneal", 0.66, 0.60, 14},
        {"fuzzy_kmeans", 0.66, 0.64, 14},
    };

    std::vector<colo::ColoConfig> configs;
    for (const auto &sc : scenarios) {
        for (const bool vector : {true, false}) {
            configs.push_back(
                colo::ConfigBuilder()
                    .service(services::ServiceKind::Memcached,
                             colo::Scenario::constant(sc.mcLoad))
                    .service(services::ServiceKind::Nginx,
                             colo::Scenario::constant(sc.ngLoad))
                    .apps({sc.app})
                    .runtime(core::RuntimeKind::Learned)
                    .learnedVector(vector)
                    .maxDuration(240 * s)
                    .seed(sc.seed)
                    .build());
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "ablation-conditioning";
    const auto results = colo::runColocations(configs, sweep);

    util::TextTable t({"scenario", "model", "worst p99/QoS", "met%",
                       "inaccuracy", "switches"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &sc = scenarios[i / 2];
        const auto &r = results[i];
        double worst = 0.0;
        for (const auto &svc : r.services)
            worst = std::max(worst,
                             svc.meanIntervalP99Us / svc.qosUs);
        t.addRow({std::string(sc.app) + "@" +
                      util::fmt(sc.mcLoad, 2) + "/" +
                      util::fmt(sc.ngLoad, 2) + " s" +
                      std::to_string(sc.seed),
                  i % 2 == 0 ? "vector" : "worst-ratio",
                  util::fmt(worst, 4) + "x",
                  util::fmtPct(r.qosMetFraction, 1),
                  util::fmtPct(r.apps[0].inaccuracy, 2),
                  std::to_string(r.apps[0].switches)});
    }
    t.print(os);
    os << "\nReading: with two tenants whose violations alternate, "
          "the collapsed worst-ratio model learns a mixture no "
          "single tenant ever produced, so it refuses reverts the "
          "full vector justifies — most visibly on the canneal@0.58 "
          "row, where both models hold QoS on every interval but "
          "the scalar one keeps burning ~10x the quality after the "
          "transient that triggered the approximation has passed. "
          "On the bayesian row the vector arbiter's different "
          "variant choices also land a strictly lower worst-service "
          "ratio (equal at this print precision; pinned exactly by "
          "tests/colo/learned_ablation_test.cc). Single-service "
          "runs are unaffected: the vector model falls back to the "
          "scalar path.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const int mixes = quick ? 6 : 25;
    std::cout << "=== Ablation: round-robin vs impact-aware arbiter "
                 "(Section 6.5) ===\n\n";
    util::TextTable t({"service", "arbiter", "p99/QoS (mean)",
                       "inaccuracy (mean)", "unfairness (mean)"});
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb}) {
        for (auto arbiter : {core::ArbiterKind::RoundRobin,
                             core::ArbiterKind::ImpactAware}) {
            ArbiterStats stats;
            runMixes(kind, arbiter, stats, mixes);
            t.addRow({services::serviceName(kind),
                      arbiter == core::ArbiterKind::RoundRobin
                          ? "round-robin"
                          : "impact-aware",
                      util::fmt(stats.latency.mean(), 2) + "x",
                      util::fmtPct(stats.inacc.mean(), 2),
                      util::fmtPct(stats.spread.mean(), 2)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading: impact-aware tends to buy the same QoS "
                 "with lower aggregate quality loss, at the cost of "
                 "concentrating the loss on fewer applications "
                 "(higher unfairness) — exactly the trade-off the "
                 "paper defers to future work.\n";

    std::cout << "\n=== Ablation: vector-conditioned vs worst-ratio "
                 "learned model ===\n\n";
    learnedConditioningTable(std::cout);
    return 0;
}
