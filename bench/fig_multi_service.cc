/**
 * @file
 * Multi-service scenario sweep (beyond the paper): two
 * latency-critical services sharing one box with approximate
 * applications, driven through the four deterministic load
 * scenarios. For every (scenario, app-mix, runtime) cell the sweep
 * reports each service's tail behaviour and the apps' quality cost,
 * showing how the engine handles heterogeneous QoS targets
 * (memcached's 200 us next to nginx's 10 ms) under time-varying
 * load. The entire grid runs as one batch through driver::Sweep.
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

struct ScenarioCase
{
    const char *label;
    colo::Scenario memcached;
    colo::Scenario nginx;
};

std::vector<ScenarioCase>
scenarioCases()
{
    using colo::Scenario;
    const sim::Time s = sim::kSecond;
    return {
        {"constant", Scenario::constant(0.70), Scenario::constant(0.70)},
        {"diurnal", Scenario::diurnal(0.65, 0.25, 120 * s),
         Scenario::diurnal(0.65, 0.25, 120 * s)},
        {"flash-crowd", Scenario::constant(0.65),
         Scenario::flashCrowd(0.60, 0.95, 30 * s, 3 * s, 20 * s,
                              10 * s)},
        {"step", Scenario::step(0.55, 0.80, 40 * s),
         Scenario::step(0.55, 0.80, 40 * s)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    std::cout << "=== Multi-service scenarios: memcached + nginx on "
                 "one box ===\n\n";

    const std::vector<std::vector<std::string>> mixes =
        quick ? std::vector<std::vector<std::string>>{
                    {"canneal", "bayesian"}}
              : std::vector<std::vector<std::string>>{
                    {"canneal", "bayesian"}, {"snp", "kmeans"}};
    const core::RuntimeKind runtimes[] = {core::RuntimeKind::Precise,
                                          core::RuntimeKind::Pliant};

    const auto cases = scenarioCases();
    std::vector<colo::ColoConfig> configs;
    for (const auto &sc : cases) {
        for (const auto &mix : mixes) {
            for (auto rt : runtimes) {
                colo::ColoConfig cfg = colo::makeMultiServiceConfig(
                    {{services::ServiceKind::Memcached, sc.memcached},
                     {services::ServiceKind::Nginx, sc.nginx}},
                    mix, rt, 71);
                if (quick)
                    cfg.maxDuration = 120 * sim::kSecond;
                configs.push_back(cfg);
            }
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "multi-service";
    const auto results = colo::runColocations(configs, sweep);

    util::TextTable t({"scenario", "apps", "runtime",
                       "memcached p99/QoS", "met%", "nginx p99/QoS",
                       "met%", "inaccuracy", "cores"});
    std::size_t cell = 0;
    for (const auto &sc : cases) {
        for (const auto &mix : mixes) {
            for (auto rt : runtimes) {
                (void)rt;
                const colo::ColoResult &r = results[cell++];
                std::string apps;
                double inacc = 0.0;
                for (const auto &a : r.apps) {
                    if (!apps.empty())
                        apps += "+";
                    apps += a.name;
                    inacc += a.inaccuracy;
                }
                inacc /= static_cast<double>(r.apps.size());
                const auto &mc = r.services[0];
                const auto &ngx = r.services[1];
                t.addRow({sc.label, apps, r.runtime,
                          util::fmt(mc.meanIntervalP99Us / mc.qosUs,
                                    2) + "x",
                          util::fmtPct(mc.qosMetFraction, 0),
                          util::fmt(ngx.meanIntervalP99Us / ngx.qosUs,
                                    2) + "x",
                          util::fmtPct(ngx.qosMetFraction, 0),
                          util::fmtPct(inacc, 1),
                          std::to_string(r.maxCoresReclaimedTotal)});
            }
        }
    }
    t.print(std::cout);
    std::cout
        << "\nReading: the precise baseline violates at least one "
           "service's QoS in every scenario with load excursions; "
           "the engine's joint control loop (any-service violation "
           "triggers actuation, reclaimed cores flow to the most "
           "pressured service) restores both tails at a small "
           "quality cost.\n";
    return 0;
}
