/**
 * @file
 * Figure 1: approximation design-space exploration.
 *
 * Odd rows (per application): the execution-time vs inaccuracy
 * scatter — measured live for the 12 real kernels, and the calibrated
 * catalog curve plus dominated cloud for all 24 paper applications.
 * Even rows: the tail latency (relative to QoS) of each *selected*
 * variant when statically colocated with each interactive service.
 *
 * Both halves run through the parallel experiment driver
 * (driver::Sweep). The kernel explorations are live wall-clock
 * measurements, so that half is pinned to one worker for timing
 * fidelity; the static colocation grid is pure simulation and fans
 * out one task per (app, variant, service) cell, printing identical
 * results at any worker count (set PLIANT_THREADS to override).
 */

#include <iostream>

#include "approx/profile.hh"
#include "colo/engine.hh"
#include "dse/explore.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

void
exploreRealKernels()
{
    std::cout << "--- Measured design space of the 15 real kernels "
                 "(odd rows, live measurement) ---\n\n";
    dse::ExploreOptions opts;
    opts.repetitions = 3;
    driver::SweepOptions sweep;
    sweep.seed = 42;
    sweep.label = "fig1-dse";
    // Kernel exploration is live wall-clock measurement; concurrent
    // kernels contend for cores, skewing timeNorm and flipping
    // Pareto selections. Keep this half measurement-grade (serial).
    // The colocation half below is pure simulation and fans out.
    sweep.threads = 1;
    for (const auto &res : dse::exploreRegistry(opts, sweep)) {
        std::cout << "[" << res.app << "] precise "
                  << util::fmt(res.preciseMs, 2) << " ms, "
                  << res.points.size() << " variants examined, "
                  << res.selectedOrder.size()
                  << " selected (<=5% inaccuracy, pareto)\n";
        util::TextTable t(
            {"variant", "time(norm)", "inaccuracy", "selected"});
        for (const auto &pt : res.points) {
            t.addRow({pt.knobs.describe(), util::fmt(pt.timeNorm, 3),
                      util::fmtPct(pt.inaccuracy, 2),
                      pt.selected ? "PARETO" : ""});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
}

void
staticColocationRows()
{
    std::cout << "--- Tail latency vs QoS per selected variant "
                 "(even rows) ---\n";
    std::cout << "Each cell: steady-state p99 / QoS when the app runs "
                 "the given variant for the whole colocation.\n\n";
    const services::ServiceKind kinds[] = {
        services::ServiceKind::Nginx,
        services::ServiceKind::Memcached,
        services::ServiceKind::MongoDb,
    };

    // Flatten the (app, variant, service) grid into one batch so the
    // driver can keep every worker busy across profile boundaries.
    std::vector<colo::ColoConfig> configs;
    for (const auto &prof : approx::catalog()) {
        for (const auto &v : prof.variants) {
            for (auto kind : kinds) {
                colo::ColoConfig cfg;
                cfg.service = kind;
                cfg.apps = {prof.name};
                cfg.runtime = core::RuntimeKind::Precise;
                cfg.initialVariants = {v.index};
                cfg.maxDuration = 30 * sim::kSecond;
                cfg.seed = 7;
                configs.push_back(cfg);
            }
        }
    }

    driver::SweepOptions sweep;
    sweep.label = "fig1-colo";
    const auto results = colo::runColocations(configs, sweep);

    std::size_t cell = 0;
    for (const auto &prof : approx::catalog()) {
        std::cout << "[" << prof.name << "] ("
                  << approx::suiteName(prof.suite) << ", "
                  << prof.mostApproxIndex() << " approx variants)\n";
        std::vector<std::string> header{"variant"};
        for (auto kind : kinds)
            header.push_back(services::serviceName(kind));
        util::TextTable t(header);
        for (const auto &v : prof.variants) {
            std::vector<std::string> row{v.isPrecise() ? "precise"
                                                       : v.label};
            for (std::size_t k = 0; k < std::size(kinds); ++k) {
                const colo::ColoResult &r = results[cell++];
                row.push_back(
                    util::fmt(r.steadyP99Us / r.qosUs, 2) + "x");
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 1: Approximation design-space "
                 "exploration ===\n\n";
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    exploreRealKernels();
    if (!quick)
        staticColocationRows();
    return 0;
}
