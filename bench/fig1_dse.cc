/**
 * @file
 * Figure 1: approximation design-space exploration.
 *
 * Odd rows (per application): the execution-time vs inaccuracy
 * scatter — measured live for the 12 real kernels, and the calibrated
 * catalog curve plus dominated cloud for all 24 paper applications.
 * Even rows: the tail latency (relative to QoS) of each *selected*
 * variant when statically colocated with each interactive service.
 */

#include <iostream>

#include "approx/profile.hh"
#include "colo/experiment.hh"
#include "dse/explore.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

void
exploreRealKernels()
{
    std::cout << "--- Measured design space of the 15 real kernels "
                 "(odd rows, live measurement) ---\n\n";
    dse::ExploreOptions opts;
    opts.repetitions = 3;
    for (const auto &entry : kernels::kernelRegistry()) {
        auto kernel = entry.make(42);
        const dse::ExploreResult res = dse::exploreKernel(*kernel, opts);
        std::cout << "[" << res.app << "] precise "
                  << util::fmt(res.preciseMs, 2) << " ms, "
                  << res.points.size() << " variants examined, "
                  << res.selectedOrder.size()
                  << " selected (<=5% inaccuracy, pareto)\n";
        util::TextTable t(
            {"variant", "time(norm)", "inaccuracy", "selected"});
        for (const auto &pt : res.points) {
            t.addRow({pt.knobs.describe(), util::fmt(pt.timeNorm, 3),
                      util::fmtPct(pt.inaccuracy, 2),
                      pt.selected ? "PARETO" : ""});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
}

void
staticColocationRows()
{
    std::cout << "--- Tail latency vs QoS per selected variant "
                 "(even rows) ---\n";
    std::cout << "Each cell: steady-state p99 / QoS when the app runs "
                 "the given variant for the whole colocation.\n\n";
    const services::ServiceKind kinds[] = {
        services::ServiceKind::Nginx,
        services::ServiceKind::Memcached,
        services::ServiceKind::MongoDb,
    };
    for (const auto &prof : approx::catalog()) {
        std::cout << "[" << prof.name << "] ("
                  << approx::suiteName(prof.suite) << ", "
                  << prof.mostApproxIndex() << " approx variants)\n";
        std::vector<std::string> header{"variant"};
        for (auto kind : kinds)
            header.push_back(services::serviceName(kind));
        util::TextTable t(header);
        for (const auto &v : prof.variants) {
            std::vector<std::string> row{v.isPrecise() ? "precise"
                                                       : v.label};
            for (auto kind : kinds) {
                colo::ColoConfig cfg;
                cfg.service = kind;
                cfg.apps = {prof.name};
                cfg.runtime = core::RuntimeKind::Precise;
                cfg.initialVariants = {v.index};
                cfg.maxDuration = 30 * sim::kSecond;
                cfg.seed = 7;
                colo::ColocationExperiment exp(cfg);
                const colo::ColoResult r = exp.run();
                row.push_back(
                    util::fmt(r.steadyP99Us / r.qosUs, 2) + "x");
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 1: Approximation design-space "
                 "exploration ===\n\n";
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    exploreRealKernels();
    if (!quick)
        staticColocationRows();
    return 0;
}
