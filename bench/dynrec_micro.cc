/**
 * @file
 * Google-benchmark microbenchmarks of the dynamic-replacement
 * machinery: dispatch-table call overhead vs a direct call, variant
 * switch latency, and signal-delivery cost. These quantify why the
 * coarse-grained replacement Pliant uses is cheap (Section 4.2).
 */

#include <benchmark/benchmark.h>

#include "dynrec/variant_table.hh"

namespace {

using pliant::dynrec::SignalDispatcher;
using pliant::dynrec::VariantTable;

int
work(int x)
{
    // Small, non-inlinable-looking payload.
    benchmark::DoNotOptimize(x);
    return x * 2654435761u % 1000;
}

void
BM_DirectCall(benchmark::State &state)
{
    int acc = 0;
    for (auto _ : state)
        acc += work(acc);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DirectCall);

void
BM_DispatchedCall(benchmark::State &state)
{
    VariantTable<int(int)> table;
    table.registerVariant([](int x) { return work(x); }, "precise");
    table.registerVariant([](int x) { return work(x) / 2; }, "approx");
    int acc = 0;
    for (auto _ : state)
        acc += table(acc);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DispatchedCall);

void
BM_VariantSwitch(benchmark::State &state)
{
    VariantTable<int(int)> table;
    table.registerVariant([](int x) { return work(x); }, "precise");
    table.registerVariant([](int x) { return work(x) / 2; }, "approx");
    int idx = 0;
    for (auto _ : state) {
        table.switchTo(idx);
        idx ^= 1;
    }
}
BENCHMARK(BM_VariantSwitch);

void
BM_SignalDelivery(benchmark::State &state)
{
    VariantTable<int(int)> table;
    table.registerVariant([](int x) { return work(x); }, "precise");
    table.registerVariant([](int x) { return work(x) / 2; }, "approx");
    SignalDispatcher dispatcher;
    dispatcher.mapSignal(34, [&]() { table.switchTo(0); });
    dispatcher.mapSignal(35, [&]() { table.switchTo(1); });
    int sig = 34;
    for (auto _ : state) {
        dispatcher.raise(sig);
        sig = sig == 34 ? 35 : 34;
    }
}
BENCHMARK(BM_SignalDelivery);

} // namespace

BENCHMARK_MAIN();
