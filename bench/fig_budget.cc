/**
 * @file
 * The cluster budget frontier (beyond the paper): global quality
 * loss vs worst-node QoS under cluster-wide budget coordination.
 *
 * Three nodes each host memcached + nginx behind a QoS-guided shed
 * front-end and share six approximate apps under the Pliant runtime
 * with QoS-aware placement. Node 0's memcached takes a flash crowd
 * past the per-node 50% shed cap, while the other nodes idle along
 * at constant load. The sweep compares the independent-nodes
 * baseline (budgets off — every node actuates purely locally)
 * against the Uniform / Proportional / Learned budget splits at the
 * same global (quality, shed) budget point.
 *
 * Reading guide: without coordination, the crowded node exhausts its
 * local 50% shed clamp and still misses QoS, while the quiet nodes
 * burn app quality on transient violations the budget would not
 * grant them. Capping quality fixes the quiet-node overspend under
 * any split (even uniform's demand-blind budget / N), but only the
 * demand-aware splits also move shed entitlement to the crowd — the
 * hot node's shed slice is funded by quiet peers — so they spend
 * several times uniform's shed budget where it buys tail latency,
 * and hold the best worst-node QoS met% at an equal or lower global
 * quality loss than the independent-nodes baseline.
 */

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "budget/budget.hh"
#include "cluster/cluster.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

constexpr sim::Time kS = sim::kSecond;

struct BudgetCase
{
    const char *label;
    /** Disengaged = independent-nodes baseline. */
    std::optional<budget::BudgetPolicy> policy;
    double qualityBudget = 0.0;
    double shedBudget = 0.0;
};

std::vector<BudgetCase>
budgetCases(bool quick)
{
    // One global budget point pins the frontier claim (asserted by
    // tests/budget/budget_engine_test.cc); the full run adds a
    // tighter quality budget to show the knob trades monotonically.
    std::vector<BudgetCase> cases = {
        {"off", std::nullopt, 0.0, 0.0},
        {"uniform", budget::BudgetPolicy::Uniform, 0.12, 1.5},
        {"proportional", budget::BudgetPolicy::Proportional, 0.12,
         1.5},
        {"learned", budget::BudgetPolicy::Learned, 0.12, 1.5},
    };
    if (!quick) {
        cases.push_back(
            {"prop-tight", budget::BudgetPolicy::Proportional, 0.06,
             1.5});
        cases.push_back(
            {"learned-tight", budget::BudgetPolicy::Learned, 0.06,
             1.5});
    }
    return cases;
}

cluster::ClusterConfig
makeConfig(const BudgetCase &bc, bool quick)
{
    cluster::ClusterConfigBuilder builder;
    for (int n = 0; n < 3; ++n) {
        builder.node();
        if (n == 0) {
            // The crowded node: past saturation AND past the 50%
            // local shed clamp, so only a cluster-funded shed slice
            // can absorb the excess.
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::flashCrowd(
                                0.60, 1.30, 30 * kS, 3 * kS, 25 * kS,
                                10 * kS));
        } else {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::constant(0.60));
        }
        builder.service(services::ServiceKind::Nginx,
                        colo::Scenario::constant(0.65));
    }
    builder
        .apps({"canneal", "bayesian", "snp", "kmeans", "raytrace",
               "streamcluster"})
        .runtime(core::RuntimeKind::Pliant)
        .placement(cluster::PlacementKind::QosAware)
        .admission(admission::AdmissionKind::QosShed,
                   admission::BatchingKind::None)
        .epoch(5 * kS)
        .seed(71)
        .maxDuration((quick ? 90 : 240) * kS);
    if (bc.policy)
        builder.budget(*bc.policy, bc.qualityBudget, bc.shedBudget);
    return builder.build();
}

/** Min over nodes of the node's mean service QoS met fraction. */
double
worstNodeMet(const cluster::ClusterResult &r)
{
    double worst = 1.0;
    for (const auto &node : r.nodes) {
        double met = 0.0;
        for (const auto &svc : node.result.services)
            met += svc.qosMetFraction;
        met /= static_cast<double>(node.result.services.size());
        worst = std::min(worst, met);
    }
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    std::cout << "=== Cluster-wide budgets: worst-node QoS vs global "
                 "quality loss ===\n\n";

    const auto cases = budgetCases(quick);
    std::vector<cluster::ClusterConfig> configs;
    for (const auto &bc : cases)
        configs.push_back(makeConfig(bc, quick));

    driver::SweepOptions sweep;
    sweep.label = "fig-budget";
    const auto results = cluster::runClusters(configs, sweep);

    util::TextTable t({"budget", "qualityB", "shedB",
                       "worst-node met%", "cluster met%", "inaccuracy",
                       "quality used", "shed used", "worst p99/QoS",
                       "migrations", "cores"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &bc = cases[i];
        const auto &r = results[i];
        t.addRow({bc.label,
                  bc.policy ? util::fmt(bc.qualityBudget, 2) : "-",
                  bc.policy ? util::fmt(bc.shedBudget, 2) : "-",
                  util::fmtPct(worstNodeMet(r), 1),
                  util::fmtPct(r.meanQosMetFraction, 1),
                  util::fmtPct(r.meanInaccuracy, 2),
                  r.budgetEnabled ? util::fmt(r.budgetQualityUsed, 3)
                                  : "-",
                  r.budgetEnabled ? util::fmt(r.budgetShedUsed, 3)
                                  : "-",
                  util::fmt(r.worstServiceRatio, 2) + "x",
                  std::to_string(r.migrations.size()),
                  std::to_string(r.totalMaxCoresReclaimed)});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: without coordination the crowded node "
           "saturates its local 50% shed clamp and still misses QoS "
           "while the quiet nodes burn quality on violations they "
           "could ride out — the baseline pays MORE quality for a "
           "WORSE worst-node tail. Any quality budget fixes the "
           "second half (even uniform's demand-blind budget / N "
           "stops the quiet-node overspend), but only the "
           "demand-aware splits move shed entitlement to the crowd: "
           "their shed-used column is 2-4x uniform's, and learned's "
           "smoothed demand model holds the best worst-node met% at "
           "the same global point. Every budgeted row strictly "
           "dominates the independent-nodes baseline — better "
           "worst-node met% at lower global quality loss — and the "
           "tight-budget rows show the frontier is walkable: half "
           "the quality budget still beats the baseline on both "
           "axes.\n";
    return 0;
}
