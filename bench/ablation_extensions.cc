/**
 * @file
 * Ablation of the Section 6.5 extensions against stock Pliant:
 *
 *  - cache partitioning (approximation -> LLC ways -> cores) vs the
 *    paper's approximation -> cores,
 *  - the online-learned controller (no offline DSE knowledge) vs
 *    Pliant with the offline variant ordering.
 *
 * Reported per service over representative colocations: tail latency
 * vs QoS, cores reclaimed, partition ways used, quality loss, and
 * the co-runner's execution time.
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

struct Row
{
    util::RunningStats latency; // interval-mean p99 / QoS
    util::RunningStats cores;   // typical cores reclaimed
    util::RunningStats ways;    // max partition ways
    util::RunningStats inacc;
    util::RunningStats exec;
};

void
runConfig(services::ServiceKind kind, core::RuntimeKind runtime,
          bool partitioning, Row &row)
{
    const char *apps[] = {"canneal", "raytrace", "bayesian", "snp",
                          "plsa", "kmeans", "streamcluster", "glimmer"};
    for (const char *app : apps) {
        colo::ColoConfig cfg;
        cfg.service = kind;
        cfg.apps = {app};
        cfg.runtime = runtime;
        cfg.enableCachePartitioning = partitioning;
        cfg.seed = 71;
        colo::Engine exp(cfg);
        const colo::ColoResult r = exp.run();
        row.latency.add(r.meanIntervalP99Us / r.qosUs);
        row.cores.add(r.typicalCoresReclaimed);
        row.ways.add(r.maxPartitionWays);
        row.inacc.add(r.apps[0].inaccuracy);
        row.exec.add(r.apps[0].relativeExecTime);
    }
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: Section 6.5 extensions vs stock "
                 "Pliant ===\n\n";
    util::TextTable t({"service", "controller", "p99/QoS",
                       "cores (typ)", "LLC ways (max)", "inaccuracy",
                       "rel exec"});
    const struct
    {
        const char *label;
        core::RuntimeKind runtime;
        bool partitioning;
    } configs[] = {
        {"pliant", core::RuntimeKind::Pliant, false},
        {"pliant+cache", core::RuntimeKind::Pliant, true},
        {"learned", core::RuntimeKind::Learned, false},
    };
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb}) {
        for (const auto &c : configs) {
            Row row;
            runConfig(kind, c.runtime, c.partitioning, row);
            t.addRow({services::serviceName(kind), c.label,
                      util::fmt(row.latency.mean(), 2) + "x",
                      util::fmt(row.cores.mean(), 2),
                      util::fmt(row.ways.mean(), 1),
                      util::fmtPct(row.inacc.mean(), 2),
                      util::fmt(row.exec.mean(), 2)});
        }
    }
    t.print(std::cout);
    std::cout <<
        "\nReading: cache partitioning substitutes LLC ways for cores "
        "on the LLC-sensitive services (NGINX/MongoDB) and is "
        "correctly abandoned (futility detection) where contention is "
        "not LLC-bound; the learned controller reaches comparable QoS "
        "without any offline design-space knowledge, at slightly "
        "higher transient violation cost while it explores.\n";
    return 0;
}
