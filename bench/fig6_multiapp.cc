/**
 * @file
 * Figure 6: multi-application colocation timelines — canneal and
 * bayesian sharing a server with each interactive service under the
 * round-robin arbiter.
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/histogram.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

void
multiTimeline(services::ServiceKind kind)
{
    colo::ColoConfig cfg;
    cfg.service = kind;
    cfg.apps = {"canneal", "bayesian"};
    cfg.runtime = core::RuntimeKind::Pliant;
    cfg.seed = 29;
    colo::Engine exp(cfg);
    const colo::ColoResult r = exp.run();

    std::cout << "[" << r.service
              << " + canneal (4 approx) + bayesian (8 approx)]  QoS "
              << util::fmt(r.qosUs / 1000.0, 2) << " ms\n";
    util::TextTable t({"t(s)", "p99/QoS", "canneal var",
                       "canneal cores", "bayesian var",
                       "bayesian cores", "decision"});
    std::vector<double> series;
    for (const auto &tp : r.timeline) {
        series.push_back(tp.p99Us);
        t.addRow({util::fmt(sim::toSeconds(tp.t), 0),
                  util::fmt(tp.p99Us / r.qosUs, 2) + "x",
                  "v" + std::to_string(tp.variantOf[0]),
                  std::to_string(tp.reclaimed[0]),
                  "v" + std::to_string(tp.variantOf[1]),
                  std::to_string(tp.reclaimed[1]),
                  core::decisionName(tp.decision.kind)});
    }
    t.print(std::cout);
    std::cout << "p99 over time: " << util::sparkline(series) << '\n';
    for (const auto &app : r.apps) {
        std::cout << app.name << ": inaccuracy "
                  << util::fmtPct(app.inaccuracy, 1)
                  << ", rel exec time "
                  << util::fmt(app.relativeExecTime, 2)
                  << ", max cores reclaimed " << app.maxCoresReclaimed
                  << '\n';
    }
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Figure 6: Multi-application colocations "
                 "(canneal + bayesian) ===\n\n";
    for (auto kind : {services::ServiceKind::Nginx,
                      services::ServiceKind::Memcached,
                      services::ServiceKind::MongoDb})
        multiTimeline(kind);
    return 0;
}
