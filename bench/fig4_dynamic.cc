/**
 * @file
 * Figure 4: Pliant's dynamic behaviour — tail-latency, reclaimed-core
 * and active-variant timelines for each interactive service colocated
 * with canneal (4 variants), raytrace (2), bayesian (8), and SNP (5).
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/histogram.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

void
timeline(services::ServiceKind kind, const std::string &app)
{
    colo::ColoConfig cfg;
    cfg.service = kind;
    cfg.apps = {app};
    cfg.runtime = core::RuntimeKind::Pliant;
    cfg.seed = 23;
    colo::Engine exp(cfg);
    const colo::ColoResult r = exp.run();

    const int most =
        approx::findProfile(app).mostApproxIndex();
    std::cout << "[" << r.service << " + " << app << "] (" << most
              << " approx variants)  QoS "
              << util::fmt(r.qosUs / 1000.0, 2) << " ms\n";

    util::TextTable t({"t(s)", "p99", "p99/QoS", "variant",
                       "cores reclaimed", "decision"});
    std::vector<double> series;
    for (const auto &tp : r.timeline) {
        series.push_back(tp.p99Us);
        t.addRow({util::fmt(sim::toSeconds(tp.t), 0),
                  util::fmt(tp.p99Us / 1000.0, 2) + "ms",
                  util::fmt(tp.p99Us / r.qosUs, 2) + "x",
                  tp.variantOf[0] == 0
                      ? "precise"
                      : "v" + std::to_string(tp.variantOf[0]),
                  std::to_string(tp.reclaimed[0]),
                  core::decisionName(tp.decision.kind)});
    }
    t.print(std::cout);
    std::cout << "p99 over time: " << util::sparkline(series) << '\n';
    std::cout << "summary: steady p99 "
              << util::fmt(r.steadyP99Us / r.qosUs, 2)
              << "x QoS | intervals meeting QoS "
              << util::fmtPct(r.qosMetFraction, 0)
              << " | max cores reclaimed " << r.maxCoresReclaimedTotal
              << " | app inaccuracy "
              << util::fmtPct(r.apps[0].inaccuracy, 1)
              << " | rel. exec time "
              << util::fmt(r.apps[0].relativeExecTime, 2) << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 4: Dynamic behaviour timelines ===\n\n";
    const services::ServiceKind kinds[] = {
        services::ServiceKind::Nginx,
        services::ServiceKind::Memcached,
        services::ServiceKind::MongoDb,
    };
    const char *apps[] = {"canneal", "raytrace", "bayesian", "snp"};
    for (auto kind : kinds)
        for (const char *app : apps)
            timeline(kind, app);
    return 0;
}
