/**
 * @file
 * Tick-loop performance harness: the repo's tracked perf trajectory.
 *
 * Runs a small set of pinned configurations spanning the engine's
 * hot-path regimes — the paper's single-service colocation (fig5
 * shape), a wide 8-tenant flash-crowd box, an admission-enabled
 * front-end, and a 3-node cluster — and reports wall time plus
 * simulated ticks per second for each. Results are written as
 * `BENCH_tick.json` (repo root when run from there; `--out` to
 * override) so every PR can compare against the previous trajectory
 * point.
 *
 * The configurations are deliberately frozen: changing them resets
 * the trajectory. Optimization PRs must keep each config's *output*
 * byte-identical (see the regression suites) while moving wall time;
 * this harness only measures, it does not validate.
 *
 * Two optional axes replay every config under the new speed knobs,
 * in the same process so the speedup column compares like with like:
 *
 *   --threads 1,4     engine tick-team widths to measure. Entries
 *                     beyond 1 are named <config>@t<N> and carry
 *                     speedup_vs_1t against the same run's 1-lane
 *                     measurement. Output is byte-identical at any
 *                     width, so these rows move wall time only.
 *   --fast-sampling   adds a <config>@fast row per config (1 lane,
 *                     quantile-table samplers). NOT byte-identical —
 *                     excluded from every golden; tracked here purely
 *                     as a wall-clock point.
 *
 * Usage: perf_tick [--quick] [--reps N] [--out FILE]
 *                  [--threads T1,T2,...] [--fast-sampling]
 *                  [--metrics-summary] [--metrics-out FILE]
 *   --quick   one repetition per config (CI smoke; timings noisy)
 *   --reps N  repetitions per config (default 3); best-of-N is
 *             reported to damp scheduler noise
 *   --out F   JSON output path (default BENCH_tick.json)
 *   --metrics-summary   after the timing reps, run each base config
 *             once more with the observability registry enabled,
 *             print its metrics table, and write the per-config
 *             exports as a metrics JSON. The extra passes are
 *             separate from the timed reps, so BENCH_tick.json rows
 *             are unaffected. scripts/check_bench_schema.py validates
 *             the file: deterministic/lane_dependent values hard-fail
 *             on drift, wall_time values warn only.
 *   --metrics-out F     metrics JSON path (default metrics.json;
 *             implies --metrics-summary)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "colo/engine.hh"
#include "obs/metrics.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

constexpr sim::Time kS = sim::kSecond;

/** Wall-time measurement of one config set: best of `reps` runs. */
struct Measurement
{
    std::string name;
    std::string description;
    double wallSeconds = 0.0;
    std::uint64_t ticks = 0;

    unsigned engineThreads = 1;
    bool fastSampling = false;

    /** 1-lane wall time from the same invocation (0 = is baseline). */
    double baselineWallSeconds = 0.0;

    double
    ticksPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(ticks) / wallSeconds
            : 0.0;
    }

    double
    speedupVsBaseline() const
    {
        return baselineWallSeconds > 0.0 && wallSeconds > 0.0
            ? baselineWallSeconds / wallSeconds
            : 1.0;
    }
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Single-engine config set: run to completion, count executed ticks
 * from the engine's clock (apps may finish before maxDuration).
 */
Measurement
runEngineSet(const std::string &name, const std::string &description,
             const colo::ColoConfig &cfg, int reps)
{
    Measurement m;
    m.name = name;
    m.description = description;
    m.engineThreads = cfg.engineThreads;
    m.fastSampling = cfg.fastSampling;
    for (int r = 0; r < reps; ++r) {
        colo::Engine engine(cfg);
        const double t0 = now();
        engine.run();
        const double dt = now() - t0;
        const std::uint64_t ticks =
            static_cast<std::uint64_t>(engine.now() / cfg.tick);
        if (r == 0 || dt < m.wallSeconds) {
            m.wallSeconds = dt;
            m.ticks = ticks;
        }
    }
    return m;
}

/** Cluster config set: every node runs its services to the horizon. */
Measurement
runClusterSet(const std::string &name,
              const std::string &description,
              const cluster::ClusterConfig &cfg, int reps)
{
    Measurement m;
    m.name = name;
    m.description = description;
    m.engineThreads = cfg.engineThreads;
    m.fastSampling = cfg.fastSampling;
    const std::uint64_t ticks =
        static_cast<std::uint64_t>(cfg.nodes.size()) *
        static_cast<std::uint64_t>(cfg.maxDuration / cfg.tick);
    for (int r = 0; r < reps; ++r) {
        cluster::Cluster c(cfg);
        const double t0 = now();
        c.run();
        const double dt = now() - t0;
        if (r == 0 || dt < m.wallSeconds) {
            m.wallSeconds = dt;
            m.ticks = ticks;
        }
    }
    return m;
}

/** The paper's fig5 cell shape: one memcached, one app, Pliant. */
colo::ColoConfig
fig5Config()
{
    return colo::makeColoConfig(services::ServiceKind::Memcached,
                                {"canneal"},
                                core::RuntimeKind::Pliant, 31);
}

/** Eight tenants on one box, two hit by a flash crowd. */
colo::ColoConfig
flashCrowd8Config()
{
    std::vector<colo::ServiceSpec> specs;
    for (int i = 0; i < 8; ++i) {
        colo::ServiceSpec s;
        s.kind = i % 2 == 0 ? services::ServiceKind::Memcached
                            : services::ServiceKind::Nginx;
        s.name = (i % 2 == 0 ? "mc-" : "ngx-") + std::to_string(i);
        s.scenario = i < 2
            ? colo::Scenario::flashCrowd(0.45, 0.95, 20 * kS, 3 * kS,
                                         20 * kS, 10 * kS)
            : colo::Scenario::constant(0.45);
        specs.push_back(std::move(s));
    }
    colo::ColoConfig cfg = colo::makeMultiServiceConfig(
        std::move(specs), {"canneal", "bayesian"},
        core::RuntimeKind::Pliant, 71);
    cfg.maxDuration = 120 * kS;
    return cfg;
}

/** Admission front-end engaged: QoS-guided shed + adaptive batching. */
colo::ColoConfig
admissionConfig()
{
    std::vector<colo::ServiceSpec> specs(2);
    specs[0].kind = services::ServiceKind::Memcached;
    specs[0].scenario = colo::Scenario::flashCrowd(
        0.45, 1.15, 10 * kS, 3 * kS, 25 * kS, 5 * kS);
    specs[1].kind = services::ServiceKind::Nginx;
    specs[1].scenario = colo::Scenario::constant(0.45);
    colo::ColoConfig cfg = colo::makeMultiServiceConfig(
        std::move(specs), {"canneal", "bayesian"},
        core::RuntimeKind::Pliant, 71);
    cfg.admission.enabled = true;
    cfg.admission.policy = admission::AdmissionKind::QosShed;
    cfg.admission.batching = admission::BatchingKind::Adaptive;
    cfg.maxDuration = 120 * kS;
    return cfg;
}

/** The fig_cluster quick shape: 3 nodes, QoS-aware placement. */
cluster::ClusterConfig
cluster3Config()
{
    cluster::ClusterConfigBuilder builder;
    for (int n = 0; n < 3; ++n) {
        builder.node();
        if (n == 0) {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::flashCrowd(
                                0.60, 0.95, 30 * kS, 3 * kS, 25 * kS,
                                10 * kS));
        } else {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::constant(0.60));
        }
        builder.service(services::ServiceKind::Nginx,
                        colo::Scenario::constant(0.65));
    }
    builder
        .apps({"canneal", "bayesian", "snp", "kmeans", "raytrace",
               "streamcluster"})
        .runtime(core::RuntimeKind::Pliant)
        .placement(cluster::PlacementKind::QosAware)
        .epoch(5 * kS)
        .seed(71)
        .maxDuration(90 * kS);
    return builder.build();
}

void
writeJson(const std::string &path,
          const std::vector<Measurement> &results, int reps)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return;
    }
    out.precision(17);
    out << "{\n"
        << "  \"bench\": \"perf_tick\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        out << "    {\n"
            << "      \"name\": \"" << m.name << "\",\n"
            << "      \"description\": \"" << m.description << "\",\n"
            << "      \"engine_threads\": " << m.engineThreads << ",\n"
            << "      \"fast_sampling\": "
            << (m.fastSampling ? "true" : "false") << ",\n"
            << "      \"speedup_vs_1t\": " << m.speedupVsBaseline()
            << ",\n"
            << "      \"wall_s\": " << m.wallSeconds << ",\n"
            << "      \"ticks\": " << m.ticks << ",\n"
            << "      \"ticks_per_sec\": " << m.ticksPerSec() << "\n"
            << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

/** One obs-enabled pass of a frozen config: name + folded snapshot. */
struct MetricsRun
{
    std::string name;
    obs::MetricsSnapshot snap;
};

/**
 * Metrics JSON: one `pliant-metrics-v1` export per frozen config,
 * wrapped so the schema checker can pair configs by name.
 */
void
writeMetricsJsonFile(const std::string &path,
                     const std::vector<MetricsRun> &runs)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"perf_tick_metrics\",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out << "    {\"name\": \"" << runs[i].name
            << "\", \"export\": ";
        obs::writeMetricsJson(out, runs[i].snap);
        out << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

/** Parse "1,4,8" into a thread axis: deduped, 1 forced first. */
std::vector<unsigned>
parseThreadAxis(const std::string &arg)
{
    std::vector<unsigned> axis;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            axis.push_back(
                static_cast<unsigned>(std::stoul(item)));
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
    // The baseline row every speedup compares against must exist.
    if (axis.empty() || axis.front() != 1)
        axis.insert(axis.begin(), 1U);
    return axis;
}

std::string
axisName(const std::string &base, unsigned threads, bool fast)
{
    std::string name = base;
    if (threads > 1)
        name += "@t" + std::to_string(threads);
    if (fast)
        name += "@fast";
    return name;
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 3;
    std::string out_path = "BENCH_tick.json";
    std::vector<unsigned> thread_axis = {1};
    bool fast_axis = false;
    bool metrics_summary = false;
    std::string metrics_out = "metrics.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            reps = 1;
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            thread_axis = parseThreadAxis(argv[++i]);
        } else if (arg == "--fast-sampling") {
            fast_axis = true;
        } else if (arg == "--metrics-summary") {
            metrics_summary = true;
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
            metrics_summary = true;
        } else {
            std::cerr << "usage: perf_tick [--quick] [--reps N] "
                         "[--out FILE] [--threads T1,T2,...] "
                         "[--fast-sampling] [--metrics-summary] "
                         "[--metrics-out FILE]\n";
            return 2;
        }
    }

    std::cout << "=== perf_tick: tick-loop performance trajectory ("
              << reps << " rep" << (reps > 1 ? "s" : "")
              << ", best-of) ===\n\n";

    struct EngineBench
    {
        std::string name;
        std::string description;
        colo::ColoConfig cfg;
    };
    const std::vector<EngineBench> engine_benches = {
        {"fig5_single_service",
         "memcached + canneal, Pliant, seed 31 (fig5 cell)",
         fig5Config()},
        {"flash_crowd_8_services",
         "8 tenants (2 flash-crowded) + 2 apps, Pliant, 120 s",
         flashCrowd8Config()},
        {"admission_qos_shed",
         "2 tenants, QosShed + adaptive batching, flash 1.15, 120 s",
         admissionConfig()},
    };
    const cluster::ClusterConfig cluster_base = cluster3Config();

    std::vector<Measurement> results;
    for (const EngineBench &b : engine_benches) {
        double baseline = 0.0;
        for (unsigned t : thread_axis) {
            colo::ColoConfig cfg = b.cfg;
            cfg.engineThreads = t;
            Measurement m =
                runEngineSet(axisName(b.name, t, false),
                             b.description, cfg, reps);
            if (t == 1)
                baseline = m.wallSeconds;
            else
                m.baselineWallSeconds = baseline;
            results.push_back(std::move(m));
        }
        if (fast_axis) {
            colo::ColoConfig cfg = b.cfg;
            cfg.fastSampling = true;
            Measurement m =
                runEngineSet(axisName(b.name, 1, true),
                             b.description, cfg, reps);
            m.baselineWallSeconds = baseline;
            results.push_back(std::move(m));
        }
    }
    {
        double baseline = 0.0;
        for (unsigned t : thread_axis) {
            cluster::ClusterConfig cfg = cluster_base;
            cfg.engineThreads = t;
            Measurement m = runClusterSet(
                axisName("cluster_3_node", t, false),
                "3 nodes x (memcached + nginx) + 6 apps, QoS-aware, "
                "90 s",
                cfg, reps);
            if (t == 1)
                baseline = m.wallSeconds;
            else
                m.baselineWallSeconds = baseline;
            results.push_back(std::move(m));
        }
        if (fast_axis) {
            cluster::ClusterConfig cfg = cluster_base;
            cfg.fastSampling = true;
            Measurement m = runClusterSet(
                axisName("cluster_3_node", 1, true),
                "3 nodes x (memcached + nginx) + 6 apps, QoS-aware, "
                "90 s",
                cfg, reps);
            m.baselineWallSeconds = baseline;
            results.push_back(std::move(m));
        }
    }

    util::TextTable t(
        {"config", "lanes", "wall s", "ticks", "ticks/s", "vs 1t"});
    for (const Measurement &m : results)
        t.addRow({m.name, std::to_string(m.engineThreads),
                  util::fmt(m.wallSeconds, 3),
                  std::to_string(m.ticks),
                  util::fmt(m.ticksPerSec() / 1e3, 1) + "k",
                  m.baselineWallSeconds > 0.0
                      ? util::fmt(m.speedupVsBaseline(), 2) + "x"
                      : "-"});
    t.print(std::cout);

    writeJson(out_path, results, reps);
    std::cout << "\nwrote " << out_path << "\n";

    if (metrics_summary) {
        // Obs-enabled passes run after (and separate from) the timed
        // reps: the timing rows above never pay for the registry, and
        // the registry's deterministic values don't depend on the
        // lane axis, so one pass per base config suffices.
        std::vector<MetricsRun> mruns;
        for (const EngineBench &b : engine_benches) {
            colo::ColoConfig cfg = b.cfg;
            cfg.observability.metrics = true;
            colo::Engine engine(cfg);
            mruns.push_back({b.name, engine.run().metrics});
        }
        {
            cluster::ClusterConfig cfg = cluster_base;
            cfg.observability.metrics = true;
            cluster::Cluster c(cfg);
            mruns.push_back({"cluster_3_node", c.run().metrics});
        }
        for (const MetricsRun &mr : mruns) {
            std::cout << "\n--- metrics: " << mr.name << " ---\n";
            obs::metricsTable(mr.snap).print(std::cout);
        }
        writeMetricsJsonFile(metrics_out, mruns);
        std::cout << "\nwrote " << metrics_out << "\n";
    }
    return 0;
}
