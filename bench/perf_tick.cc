/**
 * @file
 * Tick-loop performance harness: the repo's tracked perf trajectory.
 *
 * Runs a small set of pinned configurations spanning the engine's
 * hot-path regimes — the paper's single-service colocation (fig5
 * shape), a wide 8-tenant flash-crowd box, an admission-enabled
 * front-end, and a 3-node cluster — and reports wall time plus
 * simulated ticks per second for each. Results are written as
 * `BENCH_tick.json` (repo root when run from there; `--out` to
 * override) so every PR can compare against the previous trajectory
 * point.
 *
 * The configurations are deliberately frozen: changing them resets
 * the trajectory. Optimization PRs must keep each config's *output*
 * byte-identical (see the regression suites) while moving wall time;
 * this harness only measures, it does not validate.
 *
 * Usage: perf_tick [--quick] [--reps N] [--out FILE]
 *   --quick   one repetition per config (CI smoke; timings noisy)
 *   --reps N  repetitions per config (default 3); best-of-N is
 *             reported to damp scheduler noise
 *   --out F   JSON output path (default BENCH_tick.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "colo/engine.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

constexpr sim::Time kS = sim::kSecond;

/** Wall-time measurement of one config set: best of `reps` runs. */
struct Measurement
{
    std::string name;
    std::string description;
    double wallSeconds = 0.0;
    std::uint64_t ticks = 0;

    double
    ticksPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(ticks) / wallSeconds
            : 0.0;
    }
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Single-engine config set: run to completion, count executed ticks
 * from the engine's clock (apps may finish before maxDuration).
 */
Measurement
runEngineSet(const std::string &name, const std::string &description,
             const colo::ColoConfig &cfg, int reps)
{
    Measurement m;
    m.name = name;
    m.description = description;
    for (int r = 0; r < reps; ++r) {
        colo::Engine engine(cfg);
        const double t0 = now();
        engine.run();
        const double dt = now() - t0;
        const std::uint64_t ticks =
            static_cast<std::uint64_t>(engine.now() / cfg.tick);
        if (r == 0 || dt < m.wallSeconds) {
            m.wallSeconds = dt;
            m.ticks = ticks;
        }
    }
    return m;
}

/** Cluster config set: every node runs its services to the horizon. */
Measurement
runClusterSet(const std::string &name,
              const std::string &description,
              const cluster::ClusterConfig &cfg, int reps)
{
    Measurement m;
    m.name = name;
    m.description = description;
    const std::uint64_t ticks =
        static_cast<std::uint64_t>(cfg.nodes.size()) *
        static_cast<std::uint64_t>(cfg.maxDuration / cfg.tick);
    for (int r = 0; r < reps; ++r) {
        cluster::Cluster c(cfg);
        const double t0 = now();
        c.run();
        const double dt = now() - t0;
        if (r == 0 || dt < m.wallSeconds) {
            m.wallSeconds = dt;
            m.ticks = ticks;
        }
    }
    return m;
}

/** The paper's fig5 cell shape: one memcached, one app, Pliant. */
colo::ColoConfig
fig5Config()
{
    return colo::makeColoConfig(services::ServiceKind::Memcached,
                                {"canneal"},
                                core::RuntimeKind::Pliant, 31);
}

/** Eight tenants on one box, two hit by a flash crowd. */
colo::ColoConfig
flashCrowd8Config()
{
    std::vector<colo::ServiceSpec> specs;
    for (int i = 0; i < 8; ++i) {
        colo::ServiceSpec s;
        s.kind = i % 2 == 0 ? services::ServiceKind::Memcached
                            : services::ServiceKind::Nginx;
        s.name = (i % 2 == 0 ? "mc-" : "ngx-") + std::to_string(i);
        s.scenario = i < 2
            ? colo::Scenario::flashCrowd(0.45, 0.95, 20 * kS, 3 * kS,
                                         20 * kS, 10 * kS)
            : colo::Scenario::constant(0.45);
        specs.push_back(std::move(s));
    }
    colo::ColoConfig cfg = colo::makeMultiServiceConfig(
        std::move(specs), {"canneal", "bayesian"},
        core::RuntimeKind::Pliant, 71);
    cfg.maxDuration = 120 * kS;
    return cfg;
}

/** Admission front-end engaged: QoS-guided shed + adaptive batching. */
colo::ColoConfig
admissionConfig()
{
    std::vector<colo::ServiceSpec> specs(2);
    specs[0].kind = services::ServiceKind::Memcached;
    specs[0].scenario = colo::Scenario::flashCrowd(
        0.45, 1.15, 10 * kS, 3 * kS, 25 * kS, 5 * kS);
    specs[1].kind = services::ServiceKind::Nginx;
    specs[1].scenario = colo::Scenario::constant(0.45);
    colo::ColoConfig cfg = colo::makeMultiServiceConfig(
        std::move(specs), {"canneal", "bayesian"},
        core::RuntimeKind::Pliant, 71);
    cfg.admission.enabled = true;
    cfg.admission.policy = admission::AdmissionKind::QosShed;
    cfg.admission.batching = admission::BatchingKind::Adaptive;
    cfg.maxDuration = 120 * kS;
    return cfg;
}

/** The fig_cluster quick shape: 3 nodes, QoS-aware placement. */
cluster::ClusterConfig
cluster3Config()
{
    cluster::ClusterConfigBuilder builder;
    for (int n = 0; n < 3; ++n) {
        builder.node();
        if (n == 0) {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::flashCrowd(
                                0.60, 0.95, 30 * kS, 3 * kS, 25 * kS,
                                10 * kS));
        } else {
            builder.service(services::ServiceKind::Memcached,
                            colo::Scenario::constant(0.60));
        }
        builder.service(services::ServiceKind::Nginx,
                        colo::Scenario::constant(0.65));
    }
    builder
        .apps({"canneal", "bayesian", "snp", "kmeans", "raytrace",
               "streamcluster"})
        .runtime(core::RuntimeKind::Pliant)
        .placement(cluster::PlacementKind::QosAware)
        .epoch(5 * kS)
        .seed(71)
        .maxDuration(90 * kS);
    return builder.build();
}

void
writeJson(const std::string &path,
          const std::vector<Measurement> &results, int reps)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return;
    }
    out.precision(17);
    out << "{\n"
        << "  \"bench\": \"perf_tick\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        out << "    {\n"
            << "      \"name\": \"" << m.name << "\",\n"
            << "      \"description\": \"" << m.description << "\",\n"
            << "      \"wall_s\": " << m.wallSeconds << ",\n"
            << "      \"ticks\": " << m.ticks << ",\n"
            << "      \"ticks_per_sec\": " << m.ticksPerSec() << "\n"
            << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 3;
    std::string out_path = "BENCH_tick.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            reps = 1;
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: perf_tick [--quick] [--reps N] "
                         "[--out FILE]\n";
            return 2;
        }
    }

    std::cout << "=== perf_tick: tick-loop performance trajectory ("
              << reps << " rep" << (reps > 1 ? "s" : "")
              << ", best-of) ===\n\n";

    std::vector<Measurement> results;
    results.push_back(runEngineSet(
        "fig5_single_service",
        "memcached + canneal, Pliant, seed 31 (fig5 cell)",
        fig5Config(), reps));
    results.push_back(runEngineSet(
        "flash_crowd_8_services",
        "8 tenants (2 flash-crowded) + 2 apps, Pliant, 120 s",
        flashCrowd8Config(), reps));
    results.push_back(runEngineSet(
        "admission_qos_shed",
        "2 tenants, QosShed + adaptive batching, flash 1.15, 120 s",
        admissionConfig(), reps));
    results.push_back(runClusterSet(
        "cluster_3_node",
        "3 nodes x (memcached + nginx) + 6 apps, QoS-aware, 90 s",
        cluster3Config(), reps));

    util::TextTable t({"config", "wall s", "ticks", "ticks/s"});
    for (const Measurement &m : results)
        t.addRow({m.name, util::fmt(m.wallSeconds, 3),
                  std::to_string(m.ticks),
                  util::fmt(m.ticksPerSec() / 1e3, 1) + "k"});
    t.print(std::cout);

    writeJson(out_path, results, reps);
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
