/**
 * @file
 * Working with the real approximate kernels directly: run the
 * design-space exploration on a kernel, inspect the pareto-selected
 * variants, and drive the winning variants through the dynamic
 * replacement (signal -> function switch) machinery, exactly the way
 * Pliant's actuator does it.
 */

#include <iostream>

#include "dse/explore.hh"
#include "dynrec/instrumented.hh"
#include "kernels/kernel.hh"
#include "util/table.hh"

int
main()
{
    using namespace pliant;

    std::cout << "Exploring the k-means kernel's approximation "
                 "design space\n\n";

    auto kernel = kernels::makeKernel("kmeans", /*seed=*/99);
    dse::ExploreOptions opts;
    opts.inaccuracyBudget = 0.05; // the paper's 5% threshold
    const dse::ExploreResult res = dse::exploreKernel(*kernel, opts);

    util::TextTable t({"knobs", "time (norm)", "inaccuracy", ""});
    for (const auto &pt : res.points) {
        t.addRow({pt.knobs.describe(), util::fmt(pt.timeNorm, 3),
                  util::fmtPct(pt.inaccuracy, 2),
                  pt.selected ? "<- selected" : ""});
    }
    t.print(std::cout);

    // Convert the selection into the ordered variant list a runtime
    // consumes (variant 0 = precise).
    const auto variants = dse::toVariants(res);
    std::cout << "\nOrdered variant list for the runtime: ";
    for (const auto &v : variants)
        std::cout << v.label << " ";
    std::cout << "\n\n";

    // Drive a kernel through the dynamic-replacement path: each knob
    // setting is one dispatch-table entry mapped to a virtual signal.
    std::cout << "Switching variants through signals "
                 "(drwrap_replace substitute):\n";
    dynrec::InstrumentedKernel ik(kernels::makeKernel("kmeans", 99));
    const auto precise = ik.invoke();
    std::cout << "  variant " << ik.activeVariant() << " (precise): "
              << util::fmt(precise.elapsedMs, 2) << " ms\n";
    const int most = ik.variantCount() - 1;
    ik.raiseSignal(ik.signalFor(most));
    const auto approx = ik.invoke();
    std::cout << "  signal " << ik.signalFor(most) << " -> variant "
              << ik.activeVariant() << " ("
              << ik.knobsOf(most).describe()
              << "): " << util::fmt(approx.elapsedMs, 2)
              << " ms, inaccuracy " << util::fmtPct(approx.inaccuracy, 2)
              << "\n";
    ik.raiseSignal(ik.signalFor(0));
    std::cout << "  signal " << ik.signalFor(0)
              << " -> back to precise (switches performed: "
              << ik.switchCount() << ")\n";
    return 0;
}
