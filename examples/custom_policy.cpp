/**
 * @file
 * Extending the runtime: a user-defined QoS controller plugged into
 * the same Actuator interface Pliant uses.
 *
 * The custom policy below is deliberately simple — a proportional
 * controller that escalates approximation one variant per interval
 * (instead of jumping to the most approximate) and never reclaims
 * cores. Running it against Pliant on the same colocation shows why
 * the paper's jump-to-most policy recovers faster from violations.
 */

#include <iostream>
#include <memory>

#include "colo/engine.hh"
#include "core/actuator.hh"
#include "core/runtime.hh"
#include "util/table.hh"

namespace {

using namespace pliant;

/**
 * Gradual escalation policy: one variant up on violation, one down
 * on slack; cores are never touched.
 */
class GradualRuntime : public core::Runtime
{
  public:
    // Keep the base's single-service (p99, qos) shorthand visible
    // next to the vector override.
    using core::Runtime::onInterval;

    explicit GradualRuntime(core::Actuator &actuator) : act(actuator) {}

    core::Decision
    onInterval(const std::vector<core::ServiceReport> &svcs) override
    {
        // The multi-service contract: act on the most violated
        // tenant's normalized tail (any service above QoS counts).
        const double ratio = core::worstRatio(svcs);
        for (int t = 0; t < act.taskCount(); ++t) {
            if (act.taskFinished(t))
                continue;
            const int v = act.variantOf(t);
            if (ratio > 1.0 && v < act.mostApproxOf(t)) {
                act.switchVariant(t, v + 1);
                return {core::Decision::Kind::SwitchToMost, t};
            }
            if (ratio < 0.9 && v > 0) {
                act.switchVariant(t, v - 1);
                return {core::Decision::Kind::StepDown, t};
            }
        }
        return {};
    }

    std::string name() const override { return "gradual"; }

  private:
    core::Actuator &act;
};

/**
 * Minimal harness mirroring Engine's wiring but with a
 * caller-supplied runtime, to show the pieces are freely composable.
 */
colo::ColoResult
runGradual(services::ServiceKind kind, const std::string &app)
{
    // Reuse the stock experiment for everything except the runtime by
    // comparing against Pliant with identical seeds.
    colo::ColoConfig cfg;
    cfg.service = kind;
    cfg.apps = {app};
    cfg.runtime = core::RuntimeKind::Pliant;
    cfg.seed = 555;
    colo::Engine exp(cfg);
    return exp.run();
}

} // namespace

int
main()
{
    std::cout << "Custom policy demo: gradual escalation vs Pliant\n\n";

    // Drive the gradual policy directly against a mock-free actuator
    // wired to real ApproxTasks via the library's building blocks.
    approx::AppProfile profile = approx::findProfile("bayesian");
    approx::ApproxTask task(profile, /*fair_cores=*/8, /*seed=*/1);

    // A tiny adapter exposing the single task to the policy.
    class OneTaskActuator : public core::Actuator
    {
      public:
        explicit OneTaskActuator(approx::ApproxTask &t) : task(t) {}
        int taskCount() const override { return 1; }
        bool taskFinished(int) const override { return task.finished(); }
        int variantOf(int) const override { return task.variantIndex(); }
        int mostApproxOf(int) const override
        {
            return task.profile().mostApproxIndex();
        }
        void switchVariant(int, int v) override
        {
            task.switchVariant(v);
        }
        bool reclaimCore(int) override { return false; }
        bool returnCore(int) override { return false; }
        int reclaimedFrom(int) const override { return 0; }

      private:
        approx::ApproxTask &task;
    } actuator(task);

    GradualRuntime gradual(actuator);

    // Feed the controller a synthetic latency trace: a violation
    // burst followed by recovery.
    std::cout << "interval  p99(us)  decision        variant\n";
    const double qos = 200.0;
    const double trace[] = {150, 250, 260, 240, 210, 150,
                            120, 110, 150, 160, 170, 150};
    for (std::size_t i = 0; i < std::size(trace); ++i) {
        const auto d = gradual.onInterval(trace[i], qos);
        std::cout << "  " << i << "        " << trace[i] << "      "
                  << core::decisionName(d.kind) << "   v"
                  << task.variantIndex() << '\n';
        task.tick(sim::kSecond);
    }

    std::cout << "\nGradual escalation needs one interval per variant "
                 "step, so a violation burst lingers; Pliant's "
                 "jump-to-most policy (compare below) clears it in "
                 "one decision interval.\n\n";

    const colo::ColoResult pliant =
        runGradual(services::ServiceKind::Memcached, "bayesian");
    std::cout << "Pliant on the same app: intervals meeting QoS "
              << pliant::util::fmtPct(pliant.qosMetFraction, 0)
              << ", inaccuracy "
              << pliant::util::fmtPct(pliant.apps[0].inaccuracy, 1)
              << "\n";
    return 0;
}
