/**
 * @file
 * Multi-tenant scenario: NGINX colocated with three approximate
 * applications at once, comparing the paper's round-robin arbiter
 * against the impact-aware extension (Section 6.5), and showing the
 * per-app sacrifice breakdown.
 */

#include <iostream>

#include "colo/experiment.hh"
#include "util/table.hh"

namespace {

pliant::colo::ColoResult
runWith(pliant::core::ArbiterKind arbiter)
{
    pliant::colo::ColoConfig cfg;
    cfg.service = pliant::services::ServiceKind::Nginx;
    cfg.apps = {"canneal", "bayesian", "snp"};
    cfg.runtime = pliant::core::RuntimeKind::Pliant;
    cfg.arbiter = arbiter;
    cfg.seed = 7777;
    pliant::colo::ColocationExperiment exp(cfg);
    return exp.run();
}

} // namespace

int
main()
{
    using namespace pliant;

    std::cout << "Multi-tenant: nginx + {canneal, bayesian, snp}\n\n";

    for (auto arbiter : {core::ArbiterKind::RoundRobin,
                         core::ArbiterKind::ImpactAware}) {
        const colo::ColoResult r = runWith(arbiter);
        std::cout << "--- "
                  << (arbiter == core::ArbiterKind::RoundRobin
                          ? "round-robin arbiter (paper Section 4.4)"
                          : "impact-aware arbiter (Section 6.5 "
                            "extension)")
                  << " ---\n";
        std::cout << "nginx p99 (interval mean): "
                  << util::fmt(r.meanIntervalP99Us / 1000.0, 2)
                  << " ms (QoS " << util::fmt(r.qosUs / 1000.0, 1)
                  << " ms), intervals meeting QoS "
                  << util::fmtPct(r.qosMetFraction, 0) << "\n";
        util::TextTable t({"app", "inaccuracy", "rel exec time",
                           "variant switches", "max cores yielded"});
        for (const auto &app : r.apps) {
            t.addRow({app.name, util::fmtPct(app.inaccuracy, 2),
                      util::fmt(app.relativeExecTime, 2),
                      std::to_string(app.switches),
                      std::to_string(app.maxCoresReclaimed)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Round-robin spreads the quality loss evenly; the\n"
                 "impact-aware arbiter leans on the app whose\n"
                 "approximation buys the most contention relief per\n"
                 "unit of quality (here SNP), sparing the others.\n";
    return 0;
}
