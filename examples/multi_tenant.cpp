/**
 * @file
 * Multi-tenant scenario: TWO latency-critical services (nginx and
 * memcached) sharing one box with three approximate applications,
 * while a flash crowd hits memcached mid-run. Compares the paper's
 * round-robin arbiter against the impact-aware extension (Section
 * 6.5) and shows both the per-service tail behaviour and the
 * per-app sacrifice breakdown — the joint control loop treats a
 * violation on either service as a violation of the box.
 */

#include <iostream>

#include "colo/builder.hh"
#include "colo/engine.hh"
#include "util/table.hh"

namespace {

pliant::colo::ColoResult
runWith(pliant::core::ArbiterKind arbiter)
{
    using namespace pliant;
    const sim::Time s = sim::kSecond;
    // The builder API: tenants, apps, and runtime in one validated
    // chain — a bad app name or duplicate tenant fails here, not
    // deep inside the tick loop.
    colo::ColoConfig cfg =
        colo::ConfigBuilder()
            .service(services::ServiceKind::Nginx,
                     colo::Scenario::constant(0.65))
            .service(services::ServiceKind::Memcached,
                     colo::Scenario::flashCrowd(
                         /*base=*/0.60, /*peak=*/0.95, /*at=*/40 * s,
                         /*ramp=*/3 * s, /*hold=*/25 * s,
                         /*decay=*/10 * s))
            .apps({"canneal", "bayesian", "snp"})
            .runtime(core::RuntimeKind::Pliant)
            .arbiter(arbiter)
            .seed(7777)
            .build();
    colo::Engine engine(cfg);
    return engine.run();
}

} // namespace

int
main()
{
    using namespace pliant;

    std::cout << "Multi-tenant: nginx + memcached (flash crowd) + "
                 "{canneal, bayesian, snp}\n\n";

    for (auto arbiter : {core::ArbiterKind::RoundRobin,
                         core::ArbiterKind::ImpactAware}) {
        const colo::ColoResult r = runWith(arbiter);
        std::cout << "--- "
                  << (arbiter == core::ArbiterKind::RoundRobin
                          ? "round-robin arbiter (paper Section 4.4)"
                          : "impact-aware arbiter (Section 6.5 "
                            "extension)")
                  << " ---\n";
        util::TextTable svc({"service", "QoS", "p99 (interval mean)",
                             "intervals meeting QoS"});
        for (const auto &s : r.services) {
            svc.addRow({s.name,
                        util::fmt(s.qosUs / 1000.0, 2) + " ms",
                        util::fmt(s.meanIntervalP99Us / 1000.0, 2) +
                            " ms",
                        util::fmtPct(s.qosMetFraction, 0)});
        }
        svc.print(std::cout);
        util::TextTable t({"app", "inaccuracy", "rel exec time",
                           "variant switches", "max cores yielded"});
        for (const auto &app : r.apps) {
            t.addRow({app.name, util::fmtPct(app.inaccuracy, 2),
                      util::fmt(app.relativeExecTime, 2),
                      std::to_string(app.switches),
                      std::to_string(app.maxCoresReclaimed)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Round-robin spreads the quality loss evenly; the\n"
                 "impact-aware arbiter leans on the app whose\n"
                 "approximation buys the most contention relief per\n"
                 "unit of quality (here SNP), sparing the others.\n"
                 "During the flash crowd, reclaimed cores flow to\n"
                 "memcached (the most pressured tenant) and return\n"
                 "once the crowd decays.\n";
    return 0;
}
