/**
 * @file
 * Command-line driver: run any colocation from the shell and export
 * CSV traces, the way a downstream user scripts parameter studies.
 *
 * Usage:
 *   pliant_cli [--service nginx|memcached|mongodb]
 *              [--apps canneal,bayesian,...]
 *              [--runtime precise|pliant|learned]
 *              [--load 0.78] [--interval-s 1.0] [--seed 1]
 *              [--cache-partitioning] [--csv timeline|summary]
 *              [--list-apps]
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "approx/profile.hh"
#include "colo/experiment.hh"
#include "colo/trace.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--service nginx|memcached|mongodb]"
           " [--apps a,b,...] [--runtime precise|pliant|learned]"
           " [--load F] [--interval-s S] [--seed N]"
           " [--cache-partitioning] [--csv timeline|summary]"
           " [--list-apps]\n";
    std::exit(2);
}

std::vector<std::string>
splitCsvList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    colo::ColoConfig cfg;
    cfg.apps = {"canneal"};
    std::string csv_mode;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--service") {
            const std::string s = next();
            if (s == "nginx")
                cfg.service = services::ServiceKind::Nginx;
            else if (s == "memcached")
                cfg.service = services::ServiceKind::Memcached;
            else if (s == "mongodb")
                cfg.service = services::ServiceKind::MongoDb;
            else
                usage(argv[0]);
        } else if (arg == "--apps") {
            cfg.apps = splitCsvList(next());
        } else if (arg == "--runtime") {
            const std::string r = next();
            if (r == "precise")
                cfg.runtime = core::RuntimeKind::Precise;
            else if (r == "pliant")
                cfg.runtime = core::RuntimeKind::Pliant;
            else if (r == "learned")
                cfg.runtime = core::RuntimeKind::Learned;
            else
                usage(argv[0]);
        } else if (arg == "--load") {
            cfg.loadFraction = std::stod(next());
        } else if (arg == "--interval-s") {
            cfg.decisionInterval = sim::fromSeconds(std::stod(next()));
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(next());
        } else if (arg == "--cache-partitioning") {
            cfg.enableCachePartitioning = true;
        } else if (arg == "--csv") {
            csv_mode = next();
        } else if (arg == "--list-apps") {
            for (const auto &name : approx::catalogNames())
                std::cout << name << '\n';
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    try {
        colo::ColocationExperiment exp(cfg);
        const colo::ColoResult r = exp.run();

        if (csv_mode == "timeline") {
            colo::writeTimelineCsv(std::cout, r);
            return 0;
        }
        if (csv_mode == "summary") {
            colo::writeSummaryCsv(std::cout, r);
            return 0;
        }

        std::cout << r.service << " + ";
        for (std::size_t i = 0; i < r.apps.size(); ++i)
            std::cout << (i ? "+" : "") << r.apps[i].name;
        std::cout << " under " << r.runtime << " runtime\n\n";
        util::TextTable t({"metric", "value"});
        t.addRow({"QoS target", util::fmt(r.qosUs / 1000.0, 3) + " ms"});
        t.addRow({"steady p99 / QoS",
                  util::fmt(r.steadyP99Us / r.qosUs, 2) + "x"});
        t.addRow({"interval-mean p99 / QoS",
                  util::fmt(r.meanIntervalP99Us / r.qosUs, 2) + "x"});
        t.addRow({"intervals meeting QoS",
                  util::fmtPct(r.qosMetFraction, 0)});
        t.addRow({"cores reclaimed (max/typical)",
                  std::to_string(r.maxCoresReclaimedTotal) + " / " +
                      std::to_string(r.typicalCoresReclaimed)});
        t.addRow({"LLC ways isolated (max)",
                  std::to_string(r.maxPartitionWays)});
        for (const auto &app : r.apps) {
            t.addRow({app.name + " inaccuracy",
                      util::fmtPct(app.inaccuracy, 2)});
            t.addRow({app.name + " rel. exec time",
                      util::fmt(app.relativeExecTime, 2)});
        }
        t.print(std::cout);
    } catch (const util::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 1;
    }
    return 0;
}
