/**
 * @file
 * Command-line driver: run any colocation from the shell and export
 * CSV traces, the way a downstream user scripts parameter studies.
 *
 * Usage:
 *   pliant_cli [--service nginx|memcached|mongodb]
 *              [--services nginx,memcached,...]
 *              [--scenario constant|diurnal|flash|step|trace:<file>]
 *              [--apps canneal,bayesian,...]
 *              [--runtime precise|pliant|learned]
 *              [--learned-scalar]
 *              [--load 0.78] [--interval-s 1.0] [--seed 1]
 *              [--engine-threads N] [--fast-sampling]
 *              [--cache-partitioning] [--csv timeline|summary]
 *              [--nodes N] [--placement static|least-loaded|qos-aware]
 *              [--epoch-s 5.0]
 *              [--admission accept-all|drop-tail|prob-shed|qos-shed]
 *              [--batching none|fixed:<N>|adaptive:<usec>]
 *              [--queue-bound-qos F]
 *              [--quality-budget F] [--shed-budget F]
 *              [--budget-policy uniform|proportional|learned]
 *              [--trace-out FILE] [--metrics-out FILE]
 *              [--metrics-summary]
 *              [--list-apps]
 *
 * --services runs a multi-service colocation (one tenant per listed
 * service); --scenario applies the named deterministic load pattern
 * (default parameters, around --load) to every tenant;
 * `trace:<file>` replays a piecewise-linear (t_seconds,load) CSV.
 * --learned-scalar drops the learned runtime back to the collapsed
 * worst-ratio model (the ablation baseline for the vector-conditioned
 * per-service model that is the default).
 * --nodes N > 1 runs a cluster: every node hosts the service list,
 * and --placement decides where the apps land (and, for qos-aware,
 * whether they migrate at --epoch-s boundaries).
 * --engine-threads N parallelizes the per-tick tenant phase inside
 * every engine (byte-identical output at any N); --fast-sampling
 * switches the latency samplers to the quantile-table path, which is
 * faster but NOT byte-identical — never use it when diffing against
 * pinned output.
 * --admission / --batching enable the request-level admission
 * front-end on every tenant: queueing delay composes into the
 * monitored tails, shed/batch counters appear in the tables and CSV
 * exports, and --queue-bound-qos sizes the queue in multiples of
 * each service's QoS target.
 * --quality-budget / --shed-budget / --budget-policy enable the
 * cluster-wide budget controller (requires --nodes N > 1): at every
 * epoch barrier the cluster splits the global quality-loss and shed
 * budgets into per-node caps that gate runtime escalation and
 * admission shedding.
 * --trace-out exports a Chrome trace_event JSON (load it in
 * ui.perfetto.dev or chrome://tracing) of decision intervals, epoch
 * barriers, actuation/migration/budget events; --metrics-out writes
 * the deterministic metrics registry as pliant-metrics-v1 JSON and
 * --metrics-summary prints it as a table. All three leave the
 * simulation outputs byte-identical to a run without them.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "approx/profile.hh"
#include "budget/budget.hh"
#include "cluster/cluster.hh"
#include "colo/engine.hh"
#include "colo/trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pliant;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--service nginx|memcached|mongodb]"
           " [--services a,b,...]"
           " [--scenario constant|diurnal|flash|step|trace:<file>]"
           " [--apps a,b,...] [--runtime precise|pliant|learned]"
           " [--learned-scalar]"
           " [--load F] [--interval-s S] [--seed N]"
           " [--engine-threads N] [--fast-sampling]"
           " [--cache-partitioning] [--csv timeline|summary]"
           " [--nodes N] [--placement static|least-loaded|qos-aware]"
           " [--epoch-s S]"
           " [--admission accept-all|drop-tail|prob-shed|qos-shed]"
           " [--batching none|fixed:<N>|adaptive:<usec>]"
           " [--queue-bound-qos F]"
           " [--quality-budget F] [--shed-budget F]"
           " [--budget-policy uniform|proportional|learned]"
           " [--trace-out FILE] [--metrics-out FILE]"
           " [--metrics-summary]"
           " [--list-apps]\n";
    std::exit(2);
}

admission::AdmissionKind
parseAdmission(const std::string &s, const char *argv0)
{
    if (s == "accept-all")
        return admission::AdmissionKind::AcceptAll;
    if (s == "drop-tail")
        return admission::AdmissionKind::DropTail;
    if (s == "prob-shed")
        return admission::AdmissionKind::ProbabilisticShed;
    if (s == "qos-shed")
        return admission::AdmissionKind::QosShed;
    usage(argv0);
}

/** `none`, `fixed:<N>`, or `adaptive:<timeout_us>`. */
void
parseBatching(const std::string &s, admission::AdmissionConfig &cfg,
              const char *argv0)
{
    if (s == "none") {
        cfg.batching = admission::BatchingKind::None;
        return;
    }
    // Exact name, or name:<param> — anything else (fixed=32,
    // fixed:, adaptiveXYZ) is a usage error, not a silent fallback
    // to the default parameter.
    if (s == "fixed" || s.rfind("fixed:", 0) == 0) {
        cfg.batching = admission::BatchingKind::Fixed;
        if (s.size() > 6)
            cfg.batchSize = std::stoi(s.substr(6));
        else if (s.size() == 6)
            usage(argv0);
        return;
    }
    if (s == "adaptive" || s.rfind("adaptive:", 0) == 0) {
        cfg.batching = admission::BatchingKind::Adaptive;
        if (s.size() > 9)
            cfg.batchTimeoutUs = std::stod(s.substr(9));
        else if (s.size() == 9)
            usage(argv0);
        return;
    }
    usage(argv0);
}

services::ServiceKind
parseService(const std::string &s, const char *argv0)
{
    if (s == "nginx")
        return services::ServiceKind::Nginx;
    if (s == "memcached")
        return services::ServiceKind::Memcached;
    if (s == "mongodb")
        return services::ServiceKind::MongoDb;
    usage(argv0);
}

budget::BudgetPolicy
parseBudgetPolicy(const std::string &s, const char *argv0)
{
    try {
        return budget::parsePolicy(s);
    } catch (const util::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        usage(argv0);
    }
}

cluster::PlacementKind
parsePlacement(const std::string &s, const char *argv0)
{
    if (s == "static")
        return cluster::PlacementKind::Static;
    if (s == "least-loaded")
        return cluster::PlacementKind::LeastLoaded;
    if (s == "qos-aware")
        return cluster::PlacementKind::QosAware;
    usage(argv0);
}

/** Named scenario preset with default excursion parameters. */
colo::Scenario
parseScenario(const std::string &s, double base, const char *argv0)
{
    const sim::Time sec = sim::kSecond;
    if (s.rfind("trace:", 0) == 0)
        return colo::Scenario::traceFromCsvFile(s.substr(6));
    if (s == "constant")
        return colo::Scenario::constant(base);
    if (s == "diurnal")
        return colo::Scenario::diurnal(base, 0.25, 240 * sec);
    if (s == "flash")
        // The crowd must always be an upward excursion, even when
        // --load already sits near saturation.
        return colo::Scenario::flashCrowd(
            base, std::max(0.95, base + 0.15), 60 * sec, 5 * sec,
            30 * sec, 20 * sec);
    if (s == "step")
        return colo::Scenario::step(base, std::min(base + 0.2, 1.0),
                                    60 * sec);
    usage(argv0);
}

/** Write the folded metrics snapshot and/or print it as a table. */
void
exportMetrics(const obs::MetricsSnapshot &snap,
              const std::string &metrics_out, bool metrics_summary)
{
    if (!metrics_out.empty()) {
        std::ofstream os(metrics_out);
        if (!os)
            util::fatal("cannot open --metrics-out file '",
                        metrics_out, "'");
        obs::writeMetricsJson(os, snap);
    }
    if (metrics_summary) {
        std::cout << '\n';
        obs::metricsTable(snap).print(std::cout);
    }
}

/** Open the --trace-out stream (throws on failure). */
std::unique_ptr<std::ofstream>
openTraceStream(const std::string &path)
{
    auto os = std::make_unique<std::ofstream>(path);
    if (!*os)
        util::fatal("cannot open --trace-out file '", path, "'");
    return os;
}

std::vector<std::string>
splitCsvList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    colo::ColoConfig cfg;
    cfg.apps = {"canneal"};
    std::string csv_mode;
    std::vector<services::ServiceKind> multi;
    std::string scenario = "constant";
    std::size_t nodes = 1;
    cluster::PlacementKind placement = cluster::PlacementKind::Static;
    sim::Time epoch = 5 * sim::kSecond;
    budget::BudgetConfig budget_cfg;
    std::string trace_out;
    std::string metrics_out;
    bool metrics_summary = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--service") {
            cfg.service = parseService(next(), argv[0]);
        } else if (arg == "--services") {
            for (const auto &name : splitCsvList(next()))
                multi.push_back(parseService(name, argv[0]));
        } else if (arg == "--scenario") {
            scenario = next();
        } else if (arg == "--apps") {
            cfg.apps = splitCsvList(next());
        } else if (arg == "--runtime") {
            const std::string r = next();
            if (r == "precise")
                cfg.runtime = core::RuntimeKind::Precise;
            else if (r == "pliant")
                cfg.runtime = core::RuntimeKind::Pliant;
            else if (r == "learned")
                cfg.runtime = core::RuntimeKind::Learned;
            else
                usage(argv[0]);
        } else if (arg == "--learned-scalar") {
            cfg.learnedVector = false;
        } else if (arg == "--load") {
            cfg.loadFraction = std::stod(next());
        } else if (arg == "--interval-s") {
            cfg.decisionInterval = sim::fromSeconds(std::stod(next()));
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(next());
        } else if (arg == "--engine-threads") {
            cfg.engineThreads =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--fast-sampling") {
            cfg.fastSampling = true;
        } else if (arg == "--cache-partitioning") {
            cfg.enableCachePartitioning = true;
        } else if (arg == "--nodes") {
            nodes = std::stoul(next());
        } else if (arg == "--placement") {
            placement = parsePlacement(next(), argv[0]);
        } else if (arg == "--epoch-s") {
            epoch = sim::fromSeconds(std::stod(next()));
        } else if (arg == "--admission") {
            cfg.admission.enabled = true;
            cfg.admission.policy = parseAdmission(next(), argv[0]);
        } else if (arg == "--batching") {
            cfg.admission.enabled = true;
            parseBatching(next(), cfg.admission, argv[0]);
        } else if (arg == "--queue-bound-qos") {
            cfg.admission.enabled = true;
            cfg.admission.queueBoundQos = std::stod(next());
        } else if (arg == "--quality-budget") {
            budget_cfg.enabled = true;
            budget_cfg.qualityBudget = std::stod(next());
        } else if (arg == "--shed-budget") {
            budget_cfg.enabled = true;
            budget_cfg.shedBudget = std::stod(next());
        } else if (arg == "--budget-policy") {
            budget_cfg.enabled = true;
            budget_cfg.policy = parseBudgetPolicy(next(), argv[0]);
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--metrics-summary") {
            metrics_summary = true;
        } else if (arg == "--csv") {
            csv_mode = next();
        } else if (arg == "--list-apps") {
            for (const auto &name : approx::catalogNames())
                std::cout << name << '\n';
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    // Metrics exports need the registry; tracing alone does not.
    if (!metrics_out.empty() || metrics_summary)
        cfg.observability.metrics = true;

    // Assemble the tenant list when multi-service or a non-constant
    // scenario was requested; otherwise keep the legacy single-service
    // fields (bit-identical to the original harness).
    try {
        if (!multi.empty() || scenario != "constant") {
            if (multi.empty())
                multi.push_back(cfg.service);
            for (auto kind : multi) {
                colo::ServiceSpec spec;
                spec.kind = kind;
                spec.scenario =
                    parseScenario(scenario, cfg.loadFraction, argv[0]);
                cfg.services.push_back(spec);
            }
        }
    } catch (const util::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 1;
    }

    // Cluster mode: every node hosts the assembled service list; the
    // placement policy spreads the apps (and, for qos-aware, may
    // migrate them at epoch boundaries).
    if (budget_cfg.enabled && nodes <= 1) {
        std::cerr << "error: --quality-budget/--shed-budget/"
                     "--budget-policy are cluster features; pass "
                     "--nodes N with N > 1\n";
        return 2;
    }
    if (nodes > 1) {
        if (!csv_mode.empty()) {
            std::cerr << "error: --csv is a single-node feature\n";
            return 2;
        }
        try {
            cluster::ClusterConfigBuilder builder;
            builder.nodes(nodes);
            if (cfg.services.empty()) {
                builder.serviceOnAll(
                    cfg.service,
                    colo::Scenario::constant(cfg.loadFraction));
            } else {
                for (const auto &spec : cfg.services)
                    builder.serviceOnAll(spec.kind, spec.scenario);
            }
            builder.apps(cfg.apps)
                .runtime(cfg.runtime)
                .learnedVector(cfg.learnedVector)
                .decisionInterval(cfg.decisionInterval)
                .cachePartitioning(cfg.enableCachePartitioning)
                .placement(placement)
                .epoch(epoch)
                .engineThreads(cfg.engineThreads)
                .fastSampling(cfg.fastSampling)
                .seed(cfg.seed);
            if (cfg.admission.enabled)
                builder.admission(cfg.admission);
            if (budget_cfg.enabled)
                builder.budget(budget_cfg);
            if (cfg.observability.enabled())
                builder.observability(cfg.observability);
            const cluster::ClusterConfig ccfg = builder.build();
            cluster::Cluster cl(ccfg);
            std::unique_ptr<std::ofstream> trace_os;
            std::unique_ptr<obs::TraceWriter> tracer;
            if (!trace_out.empty()) {
                trace_os = openTraceStream(trace_out);
                tracer =
                    std::make_unique<obs::TraceWriter>(*trace_os);
                cl.setTraceWriter(tracer.get());
            }
            const cluster::ClusterResult r = cl.run();
            if (tracer)
                tracer->finish();
            if (!metrics_out.empty())
                exportMetrics(r.metrics, metrics_out, false);

            std::cout << nodes << "-node cluster under " << r.runtime
                      << " runtime, " << r.placement
                      << " placement\n\n";
            cluster::clusterTable({"cluster"}, {r})
                .print(std::cout);
            std::cout << '\n';
            util::TextTable t({"node", "apps", "worst p99/QoS",
                               "met%", "cores"});
            for (const auto &node : r.nodes) {
                std::string apps;
                for (const auto &app : node.result.apps) {
                    if (!apps.empty())
                        apps += "+";
                    apps += app.name;
                }
                double worst = 0.0;
                double met = 0.0;
                for (const auto &svc : node.result.services) {
                    worst = std::max(
                        worst, svc.meanIntervalP99Us / svc.qosUs);
                    met += svc.qosMetFraction;
                }
                met /= static_cast<double>(
                    node.result.services.size());
                t.addRow({node.name, apps.empty() ? "-" : apps,
                          util::fmt(worst, 2) + "x",
                          util::fmtPct(met, 0),
                          std::to_string(
                              node.result.maxCoresReclaimedTotal)});
            }
            t.print(std::cout);
            for (const auto &mig : r.migrations)
                std::cout << "migration: " << mig.app << " "
                          << r.nodes[mig.from].name << " -> "
                          << r.nodes[mig.to].name << " at t="
                          << util::fmt(sim::toSeconds(mig.t), 1)
                          << " s\n";
            if (r.budgetEnabled)
                std::cout << "budget: policy=" << r.budgetPolicy
                          << " quality_used="
                          << util::fmt(r.budgetQualityUsed, 4)
                          << " shed_used="
                          << util::fmt(r.budgetShedUsed, 4) << '\n';
            if (metrics_summary)
                exportMetrics(r.metrics, "", true);
        } catch (const util::FatalError &err) {
            std::cerr << "error: " << err.what() << '\n';
            return 1;
        }
        return 0;
    }

    try {
        colo::Engine exp(cfg);
        std::unique_ptr<std::ofstream> trace_os;
        std::unique_ptr<obs::TraceWriter> tracer;
        if (!trace_out.empty()) {
            trace_os = openTraceStream(trace_out);
            tracer = std::make_unique<obs::TraceWriter>(*trace_os);
            exp.setTrace(tracer.get());
        }
        const colo::ColoResult r = exp.run();
        if (tracer)
            tracer->finish();
        if (!metrics_out.empty())
            exportMetrics(r.metrics, metrics_out, false);

        if (csv_mode == "timeline") {
            colo::writeTimelineCsv(std::cout, r);
            return 0;
        }
        if (csv_mode == "summary") {
            colo::writeSummaryCsv(std::cout, r);
            return 0;
        }

        std::cout << r.service << " + ";
        for (std::size_t i = 0; i < r.apps.size(); ++i)
            std::cout << (i ? "+" : "") << r.apps[i].name;
        std::cout << " under " << r.runtime << " runtime\n\n";
        util::TextTable t({"metric", "value"});
        t.addRow({"QoS target", util::fmt(r.qosUs / 1000.0, 3) + " ms"});
        t.addRow({"steady p99 / QoS",
                  util::fmt(r.steadyP99Us / r.qosUs, 2) + "x"});
        t.addRow({"interval-mean p99 / QoS",
                  util::fmt(r.meanIntervalP99Us / r.qosUs, 2) + "x"});
        t.addRow({"intervals meeting QoS",
                  util::fmtPct(r.qosMetFraction, 0)});
        t.addRow({"cores reclaimed (max/typical)",
                  std::to_string(r.maxCoresReclaimedTotal) + " / " +
                      std::to_string(r.typicalCoresReclaimed)});
        t.addRow({"LLC ways isolated (max)",
                  std::to_string(r.maxPartitionWays)});
        for (std::size_t s = 1; s < r.services.size(); ++s) {
            const auto &svc = r.services[s];
            t.addRow({svc.name + " p99 / QoS",
                      util::fmt(svc.meanIntervalP99Us / svc.qosUs, 2) +
                          "x"});
            t.addRow({svc.name + " intervals meeting QoS",
                      util::fmtPct(svc.qosMetFraction, 0)});
        }
        if (r.admissionEnabled) {
            for (const auto &svc : r.services) {
                t.addRow({svc.name + " requests shed",
                          util::fmtPct(svc.shedFraction, 2)});
                t.addRow({svc.name + " mean queue delay",
                          util::fmt(svc.meanQueueDelayUs, 1) + " us"});
                t.addRow({svc.name + " mean batch size",
                          util::fmt(svc.meanBatchSize, 1)});
            }
        }
        for (const auto &app : r.apps) {
            t.addRow({app.name + " inaccuracy",
                      util::fmtPct(app.inaccuracy, 2)});
            t.addRow({app.name + " rel. exec time",
                      util::fmt(app.relativeExecTime, 2)});
        }
        t.print(std::cout);
        if (metrics_summary)
            exportMetrics(r.metrics, "", true);
    } catch (const util::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 1;
    }
    return 0;
}
