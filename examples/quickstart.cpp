/**
 * @file
 * Quickstart: colocate memcached with one approximate application
 * (canneal) and compare the Precise baseline against Pliant.
 *
 * This is the 60-second tour of the library: one call builds the
 * simulated server, the interactive service, the approximate task,
 * the performance monitor, and the runtime, and returns everything
 * the evaluation figures are made of.
 */

#include <iostream>

#include "colo/engine.hh"
#include "util/table.hh"

int
main()
{
    using namespace pliant;

    std::cout << "Pliant quickstart: memcached + canneal\n\n";

    // The Precise baseline: static fair core split, no approximation.
    const colo::ColoResult precise = colo::runColocation(
        services::ServiceKind::Memcached, {"canneal"},
        core::RuntimeKind::Precise, /*seed=*/2024);

    // Pliant: approximation first, cores second, reverting on slack.
    const colo::ColoResult pliant = colo::runColocation(
        services::ServiceKind::Memcached, {"canneal"},
        core::RuntimeKind::Pliant, /*seed=*/2024);

    util::TextTable t({"metric", "precise", "pliant"});
    t.addRow({"p99 tail latency / QoS",
              util::fmt(precise.steadyP99Us / precise.qosUs, 2) + "x",
              util::fmt(pliant.steadyP99Us / pliant.qosUs, 2) + "x"});
    t.addRow({"intervals meeting QoS",
              util::fmtPct(precise.qosMetFraction, 0),
              util::fmtPct(pliant.qosMetFraction, 0)});
    t.addRow({"canneal relative exec time",
              util::fmt(precise.apps[0].relativeExecTime, 2),
              util::fmt(pliant.apps[0].relativeExecTime, 2)});
    t.addRow({"canneal output inaccuracy",
              util::fmtPct(precise.apps[0].inaccuracy, 1),
              util::fmtPct(pliant.apps[0].inaccuracy, 1)});
    t.addRow({"max cores reclaimed", "0",
              std::to_string(pliant.maxCoresReclaimedTotal)});
    t.print(std::cout);

    std::cout << "\nPliant trades " << "a few percent of canneal's "
              << "output quality for the interactive service's tail "
                 "latency QoS, reclaiming cores only when "
                 "approximation alone is not enough.\n";
    return 0;
}
