/**
 * @file
 * Cluster walkthrough: three nodes under one placement layer.
 *
 *  - node "edge" runs TWO memcached shards (same kind, distinct
 *    instance names — reports key on the name) with a trace-replay
 *    load pattern on the hot shard;
 *  - nodes "mid" and "bulk" each run one memcached + one nginx;
 *  - five approximate apps are placed by the QoS-pressure-aware
 *    policy, which may migrate an app off a pressured node at
 *    cluster decision epochs.
 *
 * The run is fully deterministic (per-node seeds derive from the
 * cluster seed) and byte-identical at any worker thread count.
 */

#include <iostream>

#include "cluster/cluster.hh"
#include "util/table.hh"

int
main()
{
    using namespace pliant;
    const sim::Time s = sim::kSecond;

    // A bursty measured-looking load curve for the hot shard,
    // expressed as piecewise-linear (t_seconds, load) knots — the
    // same shape `--scenario trace:<file>` loads from CSV.
    const colo::Scenario burst = colo::Scenario::trace({
        {0 * s, 0.55},
        {30 * s, 0.60},
        {45 * s, 0.95},
        {70 * s, 0.92},
        {85 * s, 0.60},
        {180 * s, 0.55},
    });

    const cluster::ClusterConfig cfg =
        cluster::ClusterConfigBuilder()
            .node("edge")
            .service("mc-hot", services::ServiceKind::Memcached, burst)
            .service("mc-cold", services::ServiceKind::Memcached,
                     colo::Scenario::constant(0.45))
            .node("mid")
            .service(services::ServiceKind::Memcached,
                     colo::Scenario::constant(0.60))
            .service(services::ServiceKind::Nginx,
                     colo::Scenario::constant(0.65))
            .node("bulk")
            .service(services::ServiceKind::Memcached,
                     colo::Scenario::constant(0.55))
            .service(services::ServiceKind::Nginx,
                     colo::Scenario::constant(0.60))
            .apps({"canneal", "bayesian", "snp", "kmeans",
                   "streamcluster"})
            .runtime(core::RuntimeKind::Pliant)
            .placement(cluster::PlacementKind::QosAware)
            .epoch(5 * s)
            .maxDuration(180 * s)
            .seed(4242)
            .build();

    cluster::Cluster cl(cfg);
    const cluster::ClusterResult r = cl.run();

    std::cout << "Cluster: edge (2x memcached shards) + mid + bulk, "
              << r.placement << " placement, " << r.runtime
              << " runtime\n\n";
    cluster::clusterTable({"demo"}, {r}).print(std::cout);
    std::cout << '\n';

    util::TextTable t({"node", "service", "QoS",
                       "p99 (interval mean)", "met%"});
    for (const auto &node : r.nodes)
        for (const auto &svc : node.result.services)
            t.addRow({node.name, svc.name,
                      util::fmt(svc.qosUs / 1000.0, 2) + " ms",
                      util::fmt(svc.meanIntervalP99Us / 1000.0, 2) +
                          " ms",
                      util::fmtPct(svc.qosMetFraction, 0)});
    t.print(std::cout);

    if (r.migrations.empty()) {
        std::cout << "\nNo migrations: every node held its QoS with "
                     "local actuation alone.\n";
    } else {
        std::cout << '\n';
        for (const auto &mig : r.migrations)
            std::cout << "migration: " << mig.app << " "
                      << r.nodes[mig.from].name << " -> "
                      << r.nodes[mig.to].name << " at t="
                      << util::fmt(sim::toSeconds(mig.t), 1) << " s\n";
    }
    return 0;
}
