#!/usr/bin/env python3
"""Diff a fresh bench JSON against the committed reference.

Works for any bench that writes the shared row shape (perf_tick,
fig_scale). Fails (exit 1) on schema drift: top-level keys, the
per-config key set, the config roster/order, or any deterministic
simulation field changing — for fig_scale that includes the cluster
rollups (steady_p99_us, worst_ratio) and the thread-invariance bit
(identical_to_serial), which are pure simulation outputs and must
not move between machines. Wall-clock fields (wall_s,
ticks_per_sec, speedup_vs_1t, peak_rss_mb) are noisy on shared
runners, so they only produce a warning line showing the ratio —
the perf trajectory artifact is where timing history lives.

Also validates metrics exports (perf_tick --metrics-summary writes
metrics.json, a wrapper with one embedded pliant-metrics-v1 export
per config). Each metric carries its own stability class in the
schema: 'deterministic' and 'lane_dependent' values must match the
committed reference exactly (hard fail — these are simulation
outputs), while 'wall_time' values (phase timers, pool stats,
futex parks) are machine noise and warn only.

Usage: check_bench_schema.py <committed.json> <fresh.json>
"""

import json
import sys

WALL_CLOCK_FIELDS = {
    "wall_s",
    "ticks_per_sec",
    "speedup_vs_1t",
    "peak_rss_mb",
}
DETERMINISTIC_FIELDS = {
    "ticks",
    "engine_threads",
    "fast_sampling",
    "nodes",
    "tenants",
    "pool_threads",
    "steady_p99_us",
    "worst_ratio",
    "identical_to_serial",
}


# Stability classes whose values are pinned exactly by the schema.
# lane_dependent values are deterministic given the config, and the
# metrics pass always runs the frozen base configs, so they pin too.
EXACT_STABILITIES = {"deterministic", "lane_dependent"}


def fail(msg):
    print(f"SCHEMA DRIFT: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics_export(cfg_name, ref, new):
    """One embedded pliant-metrics-v1 export: pin by stability class."""
    if ref.get("schema") != new.get("schema"):
        fail(f"config '{cfg_name}' metrics schema "
             f"{new.get('schema')!r} != committed {ref.get('schema')!r}")
    ref_names = [m["name"] for m in ref["metrics"]]
    new_names = [m["name"] for m in new["metrics"]]
    if ref_names != new_names:
        fail(f"config '{cfg_name}' metric roster {new_names} != "
             f"committed {ref_names}")
    for rm, nm in zip(ref["metrics"], new["metrics"]):
        mname = rm["name"]
        for field in ("kind", "stability"):
            if rm.get(field) != nm.get(field):
                fail(f"config '{cfg_name}' metric '{mname}' {field} "
                     f"= {nm.get(field)!r} != committed "
                     f"{rm.get(field)!r}")
        value_fields = sorted(
            (set(rm) | set(nm)) - {"name", "kind", "stability"})
        if rm["stability"] in EXACT_STABILITIES:
            for field in value_fields:
                if rm.get(field) != nm.get(field):
                    fail(f"config '{cfg_name}' metric '{mname}' "
                         f"{field} = {nm.get(field)} != committed "
                         f"{rm.get(field)} (stability "
                         f"'{rm['stability']}' pins this value "
                         f"exactly)")
        else:
            # wall_time: timers and pool stats move with the machine;
            # show the headline ratio, never fail.
            for field in ("mean", "value", "max"):
                r, n = rm.get(field), nm.get(field)
                if isinstance(r, (int, float)) and r and \
                        isinstance(n, (int, float)):
                    ratio = n / r
                    flag = " <-- check locally" \
                        if not 0.5 <= ratio <= 2.0 else ""
                    print(f"warn-only: '{cfg_name}' {mname}.{field} "
                          f"ratio vs committed = {ratio:.2f}{flag}")
                    break


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        committed = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    if set(committed) != set(fresh):
        fail(f"top-level keys {sorted(fresh)} != "
             f"committed {sorted(committed)}")
    if committed["bench"] != fresh["bench"]:
        fail(f"bench name {fresh['bench']!r} != "
             f"committed {committed['bench']!r}")

    committed_names = [c["name"] for c in committed["configs"]]
    fresh_names = [c["name"] for c in fresh["configs"]]
    if committed_names != fresh_names:
        fail(f"config roster {fresh_names} != "
             f"committed {committed_names}")

    for ref, new in zip(committed["configs"], fresh["configs"]):
        name = ref["name"]
        if set(ref) != set(new):
            fail(f"config '{name}' keys {sorted(new)} != "
                 f"committed {sorted(ref)}")
        if "export" in ref:
            check_metrics_export(name, ref["export"], new["export"])
            continue
        for field in sorted(DETERMINISTIC_FIELDS & set(ref)):
            if ref[field] != new[field]:
                fail(f"config '{name}' {field} = {new[field]} != "
                     f"committed {ref[field]} (simulated output "
                     f"moved — this is a regression, not noise)")
        for field in sorted(WALL_CLOCK_FIELDS & set(ref)):
            if not ref[field]:
                continue
            ratio = new[field] / ref[field]
            flag = " <-- check locally" if not 0.5 <= ratio <= 2.0 \
                else ""
            print(f"warn-only: '{name}' {field} ratio vs committed "
                  f"= {ratio:.2f}{flag}")

    print(f"{committed['bench']} schema matches the committed "
          f"reference.")


if __name__ == "__main__":
    main()
