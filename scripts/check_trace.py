#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by obs::TraceWriter.

Checks, in order:

  1. The file parses as a JSON array of objects with the required
     keys (name, ph, ts, pid, tid) and no unknown phase letters —
     the writer only emits B/E spans, i instants, and M metadata.
  2. Per-track monotonicity: within each (pid, tid) track the
     timestamps of B/E/i events are non-decreasing. Timestamps are
     SIMULATED microseconds, so this is a determinism property of
     the run, not a wall-clock one. Metadata (M) events carry ts 0
     and are exempt.
  3. Span balance: B and E events on each track nest like a stack,
     every E names the span its matching B opened, and no span is
     left open at end of file.

Exit 0 with a summary line on success, exit 1 with a diagnostic on
the first violation. Used by CI on a `fig_cluster --trace-out` run.

Usage: check_trace.py <trace.json>
"""

import json
import sys

REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}
KNOWN_PHASES = {"B", "E", "i", "M"}


def fail(msg):
    print(f"TRACE INVALID: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    if not isinstance(events, list):
        fail(f"top level is {type(events).__name__}, expected array")

    last_ts = {}   # (pid, tid) -> last B/E/i timestamp seen
    stacks = {}    # (pid, tid) -> open span names
    spans = instants = 0
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {idx} is {type(ev).__name__}, not object")
        missing = REQUIRED_KEYS - set(ev)
        if missing:
            fail(f"event {idx} missing keys {sorted(missing)}")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"event {idx} has unknown phase {ph!r}")
        if ph == "M":
            continue
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"event {idx} ts {ts!r} is not a number")
        if track in last_ts and ts < last_ts[track]:
            fail(f"event {idx} ({ev['name']!r}) on track "
                 f"pid={track[0]} tid={track[1]} has ts {ts} < "
                 f"previous {last_ts[track]} — per-track timestamps "
                 f"must be non-decreasing")
        last_ts[track] = ts
        if ph == "B":
            stacks.setdefault(track, []).append(ev["name"])
            spans += 1
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                fail(f"event {idx} closes {ev['name']!r} on track "
                     f"pid={track[0]} tid={track[1]} with no open "
                     f"span")
            opened = stack.pop()
            if opened != ev["name"]:
                fail(f"event {idx} closes {ev['name']!r} but the "
                     f"innermost open span on track pid={track[0]} "
                     f"tid={track[1]} is {opened!r} — spans must "
                     f"nest")
        else:
            instants += 1

    for track, stack in stacks.items():
        if stack:
            fail(f"track pid={track[0]} tid={track[1]} ends with "
                 f"unclosed spans {stack}")

    print(f"trace OK: {len(events)} events, {spans} spans, "
          f"{instants} instants, {len(last_ts)} tracks")


if __name__ == "__main__":
    main()
